"""Numpy training stack: backprop, SGD, QAT, and graph export."""

from .autograd import (ConvLayer, FCLayer, FlattenLayer, MaxPoolLayer,
                       Param, ReLULayer, TrainLayer, col2im,
                       softmax_cross_entropy)
from .export import qat_calibration, to_graph
from .model import SGD, Sequential, accuracy, train_epochs
from .qat import (ActivationFakeQuant, FakeQuantConv, FakeQuantFC,
                  learned_ranges, quantize_aware)
from .surgery import equalize_channels, imbalance_channels

__all__ = [
    "ConvLayer",
    "FCLayer",
    "FlattenLayer",
    "MaxPoolLayer",
    "Param",
    "ReLULayer",
    "TrainLayer",
    "col2im",
    "softmax_cross_entropy",
    "qat_calibration",
    "to_graph",
    "SGD",
    "Sequential",
    "accuracy",
    "train_epochs",
    "ActivationFakeQuant",
    "FakeQuantConv",
    "FakeQuantFC",
    "learned_ranges",
    "quantize_aware",
    "equalize_channels",
    "imbalance_channels",
]
