"""Minimal trainable layers with hand-written backprop.

The Figure 10 experiment needs *trained* networks whose accuracy under
F16, post-training QUInt8, and quantization-aware-training QUInt8 can
be compared.  This module provides just enough machinery to train small
CNNs in numpy: conv / FC / pooling / ReLU layers with forward and
backward passes, a softmax-cross-entropy head, and parameter objects
an optimizer can step.

Trainable layers are deliberately separate from the inference IR in
:mod:`repro.nn` -- training wants mutable parameters and gradients,
inference wants an immutable DAG -- and :mod:`repro.train.export`
bridges the two.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ShapeError
from ..kernels import conv_output_hw, im2col


@dataclasses.dataclass
class Param:
    """A trainable tensor with its gradient."""

    name: str
    value: np.ndarray
    grad: Optional[np.ndarray] = None

    def zero_grad(self) -> None:
        """Reset the gradient accumulator."""
        self.grad = np.zeros_like(self.value)


class TrainLayer:
    """Base class of trainable layers."""

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients; return input gradient."""
        raise NotImplementedError

    def params(self) -> List[Param]:
        """Trainable parameters (empty for stateless layers)."""
        return []


def col2im(grad_columns: np.ndarray, input_shape: Tuple[int, ...],
           kernel: int, stride: int, padding: int) -> np.ndarray:
    """Scatter-add inverse of :func:`repro.kernels.im2col`.

    Args:
        grad_columns: (batch, out_h*out_w, channels*k*k) patch grads.
        input_shape: the original NCHW input shape.

    Returns:
        Gradient w.r.t. the original input, shape ``input_shape``.
    """
    batch, channels, in_h, in_w = input_shape
    out_h, out_w = conv_output_hw(in_h, in_w, kernel, stride, padding)
    padded = np.zeros(
        (batch, channels, in_h + 2 * padding, in_w + 2 * padding),
        dtype=np.float32)
    grads = grad_columns.reshape(
        batch, out_h, out_w, channels, kernel, kernel)
    for ky in range(kernel):
        for kx in range(kernel):
            patch = grads[:, :, :, :, ky, kx].transpose(0, 3, 1, 2)
            padded[:, :,
                   ky:ky + out_h * stride:stride,
                   kx:kx + out_w * stride:stride] += patch
    if padding > 0:
        return padded[:, :, padding:padding + in_h,
                      padding:padding + in_w]
    return padded


class ConvLayer(TrainLayer):
    """Trainable 2-D convolution (no fused activation)."""

    def __init__(self, name: str, in_channels: int, out_channels: int,
                 kernel: int, stride: int = 1, padding: int = 0,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(0)
        fan_in = in_channels * kernel * kernel
        scale = np.sqrt(2.0 / fan_in)
        self.name = name
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.weights = Param(
            f"{name}.weights",
            (rng.standard_normal(
                (out_channels, in_channels, kernel, kernel))
             * scale).astype(np.float32))
        self.bias = Param(f"{name}.bias",
                          np.zeros(out_channels, dtype=np.float32))
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...],
                                    np.ndarray]] = None

    def effective_weights(self) -> np.ndarray:
        """Weights used in the forward pass (hook for fake-quant)."""
        return self.weights.value

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        columns = im2col(x.astype(np.float32), self.kernel, self.stride,
                         self.padding)
        weights = self.effective_weights()
        flat = weights.reshape(self.out_channels, -1)
        out = columns @ flat.T + self.bias.value
        batch = x.shape[0]
        out_h, out_w = conv_output_hw(x.shape[2], x.shape[3], self.kernel,
                                      self.stride, self.padding)
        self._cache = (columns, x.shape, weights)
        return np.ascontiguousarray(
            out.reshape(batch, out_h, out_w, self.out_channels)
            .transpose(0, 3, 1, 2))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError(f"conv {self.name!r}: backward before forward")
        columns, input_shape, weights = self._cache
        batch = grad_out.shape[0]
        grad_rows = grad_out.transpose(0, 2, 3, 1).reshape(
            batch, -1, self.out_channels)
        flat_grad = np.einsum("bpo,bpk->ok", grad_rows, columns)
        self.weights.grad = (self.weights.grad
                             + flat_grad.reshape(weights.shape)
                             if self.weights.grad is not None
                             else flat_grad.reshape(weights.shape))
        bias_grad = grad_rows.sum(axis=(0, 1))
        self.bias.grad = (self.bias.grad + bias_grad
                          if self.bias.grad is not None else bias_grad)
        flat = weights.reshape(self.out_channels, -1)
        grad_columns = grad_rows @ flat
        return col2im(grad_columns, input_shape, self.kernel, self.stride,
                      self.padding)

    def params(self) -> List[Param]:
        return [self.weights, self.bias]


class FCLayer(TrainLayer):
    """Trainable fully-connected layer."""

    def __init__(self, name: str, in_features: int, out_features: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.name = name
        self.in_features = in_features
        self.out_features = out_features
        self.weights = Param(
            f"{name}.weights",
            (rng.standard_normal((out_features, in_features))
             * scale).astype(np.float32))
        self.bias = Param(f"{name}.bias",
                          np.zeros(out_features, dtype=np.float32))
        self._cache: Optional[Tuple[np.ndarray, np.ndarray]] = None

    def effective_weights(self) -> np.ndarray:
        """Weights used in the forward pass (hook for fake-quant)."""
        return self.weights.value

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        weights = self.effective_weights()
        self._cache = (x.astype(np.float32), weights)
        return self._cache[0] @ weights.T + self.bias.value

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError(f"fc {self.name!r}: backward before forward")
        x, weights = self._cache
        weight_grad = grad_out.T @ x
        self.weights.grad = (self.weights.grad + weight_grad
                             if self.weights.grad is not None
                             else weight_grad)
        bias_grad = grad_out.sum(axis=0)
        self.bias.grad = (self.bias.grad + bias_grad
                          if self.bias.grad is not None else bias_grad)
        return grad_out @ weights

    def params(self) -> List[Param]:
        return [self.weights, self.bias]


class ReLULayer(TrainLayer):
    """Rectifier with cached activation mask."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("relu: backward before forward")
        return np.where(self._mask, grad_out, 0.0).astype(np.float32)


class MaxPoolLayer(TrainLayer):
    """Max pooling with argmax routing for the backward pass."""

    def __init__(self, kernel: int, stride: int) -> None:
        self.kernel = kernel
        self.stride = stride
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        batch, channels, in_h, in_w = x.shape
        out_h, out_w = conv_output_hw(in_h, in_w, self.kernel, self.stride,
                                      0)
        columns = im2col(
            x.reshape(batch * channels, 1, in_h, in_w), self.kernel,
            self.stride, 0)
        argmax = columns.argmax(axis=-1)
        out = np.take_along_axis(columns, argmax[..., None],
                                 axis=-1)[..., 0]
        self._cache = (argmax, x.shape)
        return out.reshape(batch, channels, out_h, out_w).astype(
            np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("maxpool: backward before forward")
        argmax, input_shape = self._cache
        batch, channels, in_h, in_w = input_shape
        grad_cols = np.zeros(
            (batch * channels, argmax.shape[1],
             self.kernel * self.kernel), dtype=np.float32)
        flat_grad = grad_out.reshape(batch * channels, -1)
        np.put_along_axis(grad_cols, argmax[..., None],
                          flat_grad[..., None], axis=-1)
        grad_in = col2im(grad_cols,
                         (batch * channels, 1, in_h, in_w),
                         self.kernel, self.stride, 0)
        return grad_in.reshape(input_shape)


class FlattenLayer(TrainLayer):
    """Collapse non-batch dimensions; inverse in backward."""

    def __init__(self) -> None:
        self._shape: Optional[Tuple[int, ...]] = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ShapeError("flatten: backward before forward")
        return grad_out.reshape(self._shape)


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray
                          ) -> Tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. the logits."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    batch = logits.shape[0]
    loss = float(-np.log(probs[np.arange(batch), labels] + 1e-12).mean())
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, (grad / batch).astype(np.float32)
