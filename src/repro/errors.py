"""Exception hierarchy for the uLayer reproduction.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ShapeError(ReproError):
    """A tensor or layer received data whose shape is inconsistent."""


class DTypeError(ReproError):
    """An operation was asked to run on an unsupported data type."""


class QuantizationError(ReproError):
    """Quantization parameters are missing, invalid, or inconsistent."""


class GraphError(ReproError):
    """A neural-network graph is malformed (cycle, dangling edge, ...)."""


class PlanError(ReproError):
    """An execution plan is inconsistent with the graph it targets."""


class SimulationError(ReproError):
    """The SoC simulator was driven into an invalid state."""


class CalibrationError(ReproError):
    """A predictor or observer was used before being calibrated."""


class VerificationError(ReproError):
    """A static analyzer found correctness errors in a plan, timeline,
    or dtype flow.

    Attributes:
        diagnostics: the :class:`~repro.analysis.Diagnostic` records
            (all severities) of the failing report.
    """

    def __init__(self, message: str, diagnostics=None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])
