"""Persistent on-disk store of autotuning decisions.

A :class:`TuneCache` maps step signatures (op / shape / dtype / batch /
placements, as built by the compiler) to the kernel variant the tuner
measured fastest, so identical steps -- across layers, models, and
processes -- are tuned exactly once.  Records persist as JSON under
``~/.cache/repro-tune/`` (or any explicit path) and self-invalidate:

* the file carries a format ``version``; a mismatch discards it;
* the file carries a :func:`runtime_fingerprint` (numpy version, BLAS
  build, CPU architecture, Python version); timings measured under a
  different runtime are meaningless here, so a mismatch discards it;
* each record stores the candidate set it chose from; offering a
  different set (new variants landed, ``--allow-approx`` toggled)
  re-tunes that signature.

Thread-safe: all mutation happens under one reentrant lock.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import tempfile
import threading
from typing import Any, Dict, Iterable, Optional

import numpy as np

#: Bump when the on-disk record shape changes.
CACHE_VERSION = 1

#: Default cache file, under the XDG cache directory.
_CACHE_DIR = "repro-tune"
_CACHE_FILE = "cache.json"


def default_cache_path() -> pathlib.Path:
    """``$XDG_CACHE_HOME/repro-tune/cache.json`` (or ``~/.cache``)."""
    base = os.environ.get("XDG_CACHE_HOME")
    root = pathlib.Path(base) if base else pathlib.Path.home() / ".cache"
    return root / _CACHE_DIR / _CACHE_FILE


def _blas_signature() -> str:
    """A short identifier of the BLAS numpy was built against."""
    try:
        config = np.show_config(mode="dicts")   # numpy >= 1.25
        blas = config.get("Build Dependencies", {}).get("blas", {})
        name = blas.get("name", "unknown")
        version = blas.get("version", "")
        return f"{name}-{version}" if version else str(name)
    except (TypeError, AttributeError):
        # Older numpy: no dict mode; fall back to the build-info keys.
        info = getattr(np, "__config__", None)
        for attr in ("blas_ilp64_opt_info", "blas_opt_info",
                     "blas_info"):
            section = getattr(info, attr, None)
            if section:
                libs = section.get("libraries")
                if libs:
                    return "+".join(str(lib) for lib in libs)
        return "unknown"


def runtime_fingerprint() -> Dict[str, str]:
    """Identity of the runtime the timings were measured under.

    Any field changing means stored timings no longer predict this
    machine's kernel ranking, so the cache discards itself.
    """
    return {
        "numpy": np.__version__,
        "blas": _blas_signature(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
    }


class TuneCache:
    """Thread-safe, optionally persistent store of tuning records.

    Args:
        path: JSON file backing the cache.  ``None`` keeps the cache
            in memory only (``save()`` is then a no-op) -- the bench
            harness and tests use this so timing runs never leak state
            between each other.

    A stored file whose version or runtime fingerprint mismatches the
    current process is discarded on load (counted in ``invalidated``).
    """

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.path = pathlib.Path(path) if path is not None else None
        self.fingerprint = runtime_fingerprint()
        self._records: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        if self.path is not None:
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        try:
            raw = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return
        if not isinstance(raw, dict):
            return
        with self._lock:
            if (raw.get("version") != CACHE_VERSION
                    or raw.get("fingerprint") != self.fingerprint):
                self.invalidated += 1
                return
            records = raw.get("records")
            if isinstance(records, dict):
                self._records = {
                    str(sig): dict(rec) for sig, rec in records.items()
                    if isinstance(rec, dict) and "variant" in rec
                }

    def save(self) -> None:
        """Atomically persist the records (no-op for memory caches)."""
        if self.path is None:
            return
        with self._lock:
            payload = {
                "version": CACHE_VERSION,
                "fingerprint": self.fingerprint,
                "records": self._records,
            }
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "w", dir=str(self.path.parent), suffix=".tmp",
                delete=False)
            try:
                with handle:
                    json.dump(payload, handle, indent=2, sort_keys=True)
                    handle.write("\n")
                os.replace(handle.name, self.path)
            except BaseException:
                os.unlink(handle.name)
                raise

    def get(self, signature: str,
            candidates: Iterable[str]) -> Optional[str]:
        """The stored winning variant, or None when re-tuning is due.

        A record only hits when it chose among exactly the candidate
        set being offered now -- new variants (or a toggled
        ``allow_approx``) must re-tune.
        """
        offered = sorted(candidates)
        with self._lock:
            record = self._records.get(signature)
            if (record is None
                    or record.get("candidates") != offered
                    or record.get("variant") not in offered):
                self.misses += 1
                return None
            self.hits += 1
            return str(record["variant"])

    def put(self, signature: str, variant: str,
            candidates: Iterable[str],
            timings_ms: Optional[Dict[str, float]] = None) -> None:
        """Record a tuning decision for ``signature``."""
        record: Dict[str, Any] = {
            "variant": variant,
            "candidates": sorted(candidates),
        }
        if timings_ms:
            record["ms"] = {name: float(ms)
                            for name, ms in sorted(timings_ms.items())}
        with self._lock:
            self._records[signature] = record

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def records(self) -> Dict[str, Dict[str, Any]]:
        """A snapshot copy of all records (for inspection/tests)."""
        with self._lock:
            return {sig: dict(rec)
                    for sig, rec in self._records.items()}

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {"records": len(self._records), "hits": self.hits,
                    "misses": self.misses,
                    "invalidated": self.invalidated}
