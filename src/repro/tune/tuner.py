"""Per-step kernel-variant selection by measurement.

The compiler builds every *legal* lowering of a step (the reference
im2col+GEMM path plus the applicable alternatives from
:mod:`repro.kernels.variants`) and asks a :class:`Tuner` which one to
bake into the :class:`~repro.compile.program.CompiledProgram`.  The
tuner:

1. consults its :class:`~repro.tune.cache.TuneCache` -- a hit (same
   signature, same candidate set, same runtime fingerprint) answers
   with **zero re-timing**;
2. on a miss, synthesizes one deterministic input, runs the reference
   lowering, and **byte-checks** every alternative against it --
   a variant that changes even one output byte is discarded (the
   repo's identity invariant is the acceptance bar, not a tolerance);
   variants declared *approximate* (Winograd) are only offered under
   ``allow_approx`` and checked against ``np.allclose`` instead;
3. times the survivors min-of-repeats
   (:func:`~repro.harness.timing.min_time_ms`, the bench harness's
   estimator) and records the winner.

The tuner is compile-time machinery: once a variant is chosen, the
compiled step runs it unconditionally and the runtime (serial loop or
:class:`~repro.compile.parallel.ParallelRuntime`) is none the wiser.
"""

from __future__ import annotations

from typing import (AbstractSet, Callable, Dict, List, Optional,
                    Sequence, Tuple)

import numpy as np

from ..harness.timing import min_time_ms
from .cache import TuneCache

#: A step lowering offered for selection: (variant name, step fn).
Candidate = Tuple[str, Callable[[List[np.ndarray]], np.ndarray]]

#: Default tolerances for approximate (Winograd) variants.
_APPROX_RTOL = 1e-3
_APPROX_ATOL = 1e-4


class Tuner:
    """Selects the fastest legal kernel variant per step signature.

    Args:
        cache: the (possibly shared, possibly persistent)
            :class:`TuneCache`; defaults to a fresh in-memory cache.
        repeats: min-of-repeats count per timed variant.
        allow_approx: offer approximate variants (Winograd F(2,3)),
            validated by tolerance instead of byte identity.  Off by
            default -- the identity invariant holds unless the user
            opts out explicitly.
        rtol / atol: tolerances for approximate variants.

    Attributes:
        timed: signatures actually microbenchmarked (cache misses);
            a warm cache keeps this at zero.
        selections: variant name histogram over all select() calls.
    """

    def __init__(self, cache: Optional[TuneCache] = None,
                 repeats: int = 3, allow_approx: bool = False,
                 rtol: float = _APPROX_RTOL,
                 atol: float = _APPROX_ATOL) -> None:
        self.cache = cache if cache is not None else TuneCache()
        self.repeats = int(repeats)
        self.allow_approx = bool(allow_approx)
        self.rtol = float(rtol)
        self.atol = float(atol)
        self.timed = 0
        self.selections: Dict[str, int] = {}

    def _record_selection(self, variant: str) -> str:
        self.selections[variant] = self.selections.get(variant, 0) + 1
        return variant

    def _identical(self, out: np.ndarray, ref: np.ndarray) -> bool:
        return (out.shape == ref.shape and out.dtype == ref.dtype
                and out.tobytes() == ref.tobytes())

    def _close(self, out: np.ndarray, ref: np.ndarray) -> bool:
        if out.shape != ref.shape or out.dtype != ref.dtype:
            return False
        return bool(np.allclose(out.astype(np.float64),
                                ref.astype(np.float64),
                                rtol=self.rtol, atol=self.atol))

    def select(self, signature: str,
               candidates: Sequence[Candidate],
               make_input: Callable[[], np.ndarray],
               approx: AbstractSet[str] = frozenset()) -> str:
        """The variant to bake into the step with this signature.

        ``candidates[0]`` is the reference lowering and is never
        rejected.  Names in ``approx`` are tolerance-checked (and only
        legal under ``allow_approx``; the compiler must not offer them
        otherwise); all others must reproduce the reference output
        byte for byte on the synthesized input or they are discarded
        before any timing.
        """
        if not candidates:
            raise ValueError("select() needs at least one candidate")
        names = [name for name, _ in candidates]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate candidate names: {names}")
        if len(candidates) == 1:
            return self._record_selection(names[0])
        cached = self.cache.get(signature, names)
        if cached is not None:
            return self._record_selection(cached)

        inputs = [make_input()]
        ref_name, ref_fn = candidates[0]
        reference = np.asarray(ref_fn(inputs))
        survivors: List[Candidate] = [(ref_name, ref_fn)]
        for name, fn in candidates[1:]:
            out = np.asarray(fn(inputs))
            check = self._close if name in approx else self._identical
            if check(out, reference):
                survivors.append((name, fn))

        timings: Dict[str, float] = {}
        if len(survivors) == 1:
            winner = ref_name
        else:
            self.timed += 1
            for name, fn in survivors:
                ms, _ = min_time_ms(lambda f=fn: f(inputs),
                                    self.repeats)
                timings[name] = ms
            winner = min(timings, key=lambda name: timings[name])
        self.cache.put(signature, winner, names, timings)
        return self._record_selection(winner)

    def flush(self) -> None:
        """Persist the cache (no-op for in-memory caches)."""
        self.cache.save()
