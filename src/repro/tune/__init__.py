"""Profile-guided kernel autotuning (compile-time variant selection).

μLayer's premise is that each layer is won by the execution strategy
its shape and dtype favor; this package closes the loop for the
compiled path.  At compile time a :class:`Tuner` microbenchmarks the
legal lowerings of every step (im2col+GEMM reference, direct 1x1 GEMM,
depthwise mat-vec, batch-folded float GEMM, shifted-view max pooling,
and -- opt-in, approximate -- Winograd F(2,3)), byte-checks them
against the reference, and bakes the fastest into the
:class:`~repro.compile.program.CompiledProgram`.  Decisions persist in
a versioned, runtime-fingerprinted :class:`TuneCache` so identical
steps are tuned once per machine, not once per process.
"""

from .cache import (CACHE_VERSION, TuneCache, default_cache_path,
                    runtime_fingerprint)
from .tuner import Tuner

__all__ = [
    "CACHE_VERSION",
    "TuneCache",
    "Tuner",
    "default_cache_path",
    "runtime_fingerprint",
]
