"""Alternative kernel lowerings offered to the autotuner.

The compiled path's default lowering (im2col + GEMM with a fused
epilogue) is one point in the implementation space; :mod:`repro.tune`
times the legal alternatives below per step and bakes the winner into
the program.  Every function here is a complete drop-in computation
for one step family:

* :func:`max_pool_shifted` -- max pooling as an elementwise maximum of
  ``k*k`` shifted strided views, skipping the window-view reduction.
  Max is order-independent and exact, so for ``padding == 0`` this is
  byte-identical to :func:`~repro.kernels.pooling.max_pool` for any
  dtype.
* :func:`depthwise_matvec` -- the depthwise per-channel contraction as
  one batched mat-vec instead of an einsum.  Identical on the integer
  pipelines (both accumulate exactly); float pipelines are subject to
  the tuner's byte-identity check.
* :func:`conv1x1_direct_f32` -- a 1x1/stride-1/no-padding convolution
  as a direct GEMM over the NCHW layout, skipping both the im2col
  copy and the NHWC->NCHW output fold.
* :func:`winograd_conv3x3` -- F(2x2, 3x3) Winograd convolution.  This
  trades multiplications for additions and is *approximate* relative
  to direct convolution (different float rounding), so the tuner only
  offers it under ``allow_approx`` with a tolerance check instead of
  the byte-identity check.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ShapeError
from .im2col import conv_output_hw


def max_pool_shifted(images: np.ndarray, kernel: int,
                     stride: int) -> np.ndarray:
    """Max pooling via an elementwise maximum of shifted views.

    Requires ``padding == 0`` (the caller guarantees it); the reference
    :func:`~repro.kernels.pooling.max_pool` pads with the dtype's
    minimum, which the shifted formulation cannot reproduce without a
    copy.  Output dtype equals the input dtype.
    """
    height, width = images.shape[2], images.shape[3]
    out_h, out_w = conv_output_hw(height, width, kernel, stride, 0)
    result: Optional[np.ndarray] = None
    for i in range(kernel):
        for j in range(kernel):
            view = images[:, :,
                          i:i + stride * (out_h - 1) + 1:stride,
                          j:j + stride * (out_w - 1) + 1:stride]
            if result is None:
                result = view.copy()
            else:
                np.maximum(result, view, out=result)
    assert result is not None
    return result


def depthwise_matvec(columns: np.ndarray,
                     filters: np.ndarray) -> np.ndarray:
    """Per-channel depthwise contraction as one batched mat-vec.

    ``columns`` is ``(batch*channels, patches, k*k)``, ``filters`` is
    ``(batch*channels, k*k)``; returns ``(batch*channels, patches)``,
    the same contraction ``einsum("npk,nk->np", ...)`` performs.
    """
    return np.matmul(columns, filters[:, :, None])[:, :, 0]


def conv1x1_direct_f32(x: np.ndarray, weights: np.ndarray,
                       bias: Optional[np.ndarray] = None) -> np.ndarray:
    """1x1/stride-1 convolution as a direct GEMM over NCHW (f32).

    Contracts ``weights (OC, C)`` against the free ``(N, C, H*W)``
    view of the input -- no im2col copy, no output transpose.
    """
    if weights.ndim == 4:
        if weights.shape[-2:] != (1, 1):
            raise ShapeError(
                f"conv1x1_direct_f32 needs 1x1 filters, got "
                f"{weights.shape}")
        weights = weights.reshape(weights.shape[0], weights.shape[1])
    batch, channels, height, width = x.shape
    acc = np.matmul(weights, x.reshape(batch, channels, height * width))
    if bias is not None:
        acc = acc + bias[:, None]
    return acc.reshape(batch, weights.shape[0], height, width)


#: F(2x2, 3x3) Winograd transform matrices (Lavin & Gray 2016).
_WINO_BT = np.array([[1, 0, -1, 0],
                     [0, 1, 1, 0],
                     [0, -1, 1, 0],
                     [0, 1, 0, -1]], dtype=np.float32)
_WINO_G = np.array([[1.0, 0.0, 0.0],
                    [0.5, 0.5, 0.5],
                    [0.5, -0.5, 0.5],
                    [0.0, 0.0, 1.0]], dtype=np.float32)
_WINO_AT = np.array([[1, 1, 1, 0],
                     [0, 1, -1, -1]], dtype=np.float32)


def winograd_filter_transform(weights: np.ndarray) -> np.ndarray:
    """``G w G^T`` per (out-channel, in-channel) 3x3 filter.

    Returns the transformed filters reorganized as ``(16, OC, C)`` so
    the 16 per-position contractions run as one batched matmul.
    """
    if weights.shape[-2:] != (3, 3):
        raise ShapeError(
            f"Winograd F(2,3) needs 3x3 filters, got {weights.shape}")
    u = np.einsum("ij,ocjk,kl->ocil", _WINO_G,
                  weights.astype(np.float32), _WINO_G.T)
    out_c, in_c = weights.shape[0], weights.shape[1]
    return np.ascontiguousarray(
        u.transpose(2, 3, 0, 1).reshape(16, out_c, in_c))


def winograd_conv3x3(x: np.ndarray, u16: np.ndarray,
                     bias: Optional[np.ndarray] = None,
                     padding: int = 0, relu: bool = False) -> np.ndarray:
    """F(2x2, 3x3) Winograd convolution at stride 1 (f32).

    Args:
        x: input activations ``(N, C, H, W)``.
        u16: transformed filters from
            :func:`winograd_filter_transform`, ``(16, OC, C)``.
        bias: per-output-channel bias, added after the inverse
            transform.
        padding: symmetric zero padding of the input.
        relu: clamp the output at zero.

    Returns:
        ``(N, OC, OH, OW)`` float32 output.  Approximate relative to
        direct convolution: the transforms change the float rounding.
    """
    batch, channels, height, width = x.shape
    out_c = u16.shape[1]
    out_h, out_w = conv_output_hw(height, width, 3, 1, padding)
    tiles_h, tiles_w = -(-out_h // 2), -(-out_w // 2)
    padded = np.zeros((batch, channels, 2 * tiles_h + 2, 2 * tiles_w + 2),
                      dtype=np.float32)
    padded[:, :, padding:padding + height,
           padding:padding + width] = x
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (4, 4), axis=(2, 3))[:, :, ::2, ::2]
    tiles = windows.reshape(batch, channels, tiles_h * tiles_w, 4, 4)
    v = np.einsum("ij,nctjk,kl->nctil", _WINO_BT, tiles, _WINO_BT.T)
    v16 = np.ascontiguousarray(
        v.transpose(3, 4, 1, 0, 2).reshape(
            16, channels, batch * tiles_h * tiles_w))
    m16 = np.matmul(u16, v16)    # (16, OC, N*T)
    m = m16.reshape(4, 4, out_c, batch, tiles_h * tiles_w)
    y = np.einsum("ij,jkonl,km->imonl", _WINO_AT, m, _WINO_AT.T)
    y = y.reshape(2, 2, out_c, batch, tiles_h, tiles_w)
    out = np.ascontiguousarray(
        y.transpose(3, 2, 4, 0, 5, 1)).reshape(
        batch, out_c, 2 * tiles_h, 2 * tiles_w)[:, :, :out_h, :out_w]
    if bias is not None:
        out = out + bias.astype(np.float32)[None, :, None, None]
    if relu:
        out = np.maximum(out, 0.0)
    return np.ascontiguousarray(out, dtype=np.float32)
