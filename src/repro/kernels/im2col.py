"""im2col lowering of convolutions to matrix multiplication.

ARM Compute Library (the paper's middleware) executes convolutions by
lowering them to GEMM via im2col; we do the same so that a single GEMM
kernel per data type serves both convolutional and fully-connected
layers, mirroring the paper's observation that GEMM is "a key operation
of convolutional and FC layers" (Section 6).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..errors import ShapeError


def conv_output_hw(in_h: int, in_w: int, kernel: int, stride: int,
                   padding: int) -> Tuple[int, int]:
    """Output height/width of a convolution or pooling window sweep.

    Raises:
        ShapeError: if the window never fits inside the padded input.
    """
    out_h = (in_h + 2 * padding - kernel) // stride + 1
    out_w = (in_w + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"kernel {kernel} stride {stride} padding {padding} does not "
            f"fit input {in_h}x{in_w}")
    return out_h, out_w


def im2col(images: np.ndarray, kernel: int, stride: int, padding: int,
           pad_value: float = 0.0,
           out: Optional[np.ndarray] = None) -> np.ndarray:
    """Unfold NCHW images into GEMM-ready patch columns.

    Args:
        images: array of shape (batch, channels, height, width).
        kernel: square window side length.
        stride: window step.
        padding: zero padding applied on all four sides.
        pad_value: the value used for padding.  Float paths pad with
            0.0; the QUInt8 path pads with the input zero point so the
            padding represents real zero.
        out: optional flat uint8 scratch buffer to materialize the
            columns into (the parallel runtime's pre-planned per-worker
            transient slot); must be at least the column matrix's byte
            size.  Element values are identical with or without it --
            only the allocation is elided.

    Returns:
        Array of shape (batch, out_h * out_w, channels * kernel * kernel)
        where each row is one receptive field flattened channel-major.
    """
    if images.ndim != 4:
        raise ShapeError(
            f"im2col expects NCHW input, got shape {images.shape}")
    batch, channels, in_h, in_w = images.shape
    out_h, out_w = conv_output_hw(in_h, in_w, kernel, stride, padding)
    if padding > 0:
        padded = np.full(
            (batch, channels, in_h + 2 * padding, in_w + 2 * padding),
            pad_value, dtype=images.dtype)
        padded[:, :, padding:padding + in_h, padding:padding + in_w] = images
    else:
        padded = images
    # Strided-view extraction of all kernel x kernel windows.
    stride_b, stride_c, stride_h, stride_w = padded.strides
    windows = np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(stride_b, stride_c, stride_h * stride, stride_w * stride,
                 stride_h, stride_w),
        writeable=False,
    )
    # (batch, out_h, out_w, channels, kernel, kernel) -> rows.
    if out is None:
        columns = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
            batch, out_h * out_w, channels * kernel * kernel)
        return np.ascontiguousarray(columns)
    nbytes = (batch * out_h * out_w * channels * kernel * kernel
              * images.dtype.itemsize)
    if out.dtype != np.uint8 or out.ndim != 1 or out.nbytes < nbytes:
        raise ShapeError(
            f"im2col scratch must be a flat uint8 buffer of at least "
            f"{nbytes} bytes, got dtype {out.dtype} shape {out.shape}")
    dst = out[:nbytes].view(images.dtype).reshape(
        batch, out_h * out_w, channels * kernel * kernel)
    np.copyto(
        dst.reshape(batch, out_h, out_w, channels, kernel, kernel),
        windows.transpose(0, 2, 3, 1, 4, 5))
    return dst


def col2im_shape(batch: int, out_channels: int, out_h: int,
                 out_w: int) -> Tuple[int, int, int, int]:
    """NCHW shape of the convolution output after the GEMM."""
    return (batch, out_channels, out_h, out_w)


def flatten_filters(filters: np.ndarray) -> np.ndarray:
    """Reshape (out_c, in_c, k, k) filters to a (out_c, in_c*k*k) matrix.

    The row order matches :func:`im2col`'s column order (channel-major,
    then kernel row, then kernel column).
    """
    if filters.ndim != 4:
        raise ShapeError(
            f"filters must have shape (out_c, in_c, k, k), got "
            f"{filters.shape}")
    out_c = filters.shape[0]
    return filters.reshape(out_c, -1)
