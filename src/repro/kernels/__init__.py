"""Numerical kernels: im2col, float GEMM, quantized GEMM, pooling."""

from .gemm import gemm_f16, gemm_f32
from .im2col import (col2im_shape, conv_output_hw, flatten_filters, im2col)
from .op_cache import OperandCache
from .pooling import avg_pool, global_avg_pool, max_pool
from .qgemm import (fused_const_row, qgemm, qgemm_accumulate, qgemm_fused,
                    quantize_bias)
from .variants import (conv1x1_direct_f32, depthwise_matvec,
                       max_pool_shifted, winograd_conv3x3,
                       winograd_filter_transform)

__all__ = [
    "gemm_f16",
    "gemm_f32",
    "OperandCache",
    "col2im_shape",
    "conv_output_hw",
    "flatten_filters",
    "im2col",
    "avg_pool",
    "global_avg_pool",
    "max_pool",
    "fused_const_row",
    "qgemm",
    "qgemm_accumulate",
    "qgemm_fused",
    "quantize_bias",
    "conv1x1_direct_f32",
    "depthwise_matvec",
    "max_pool_shifted",
    "winograd_conv3x3",
    "winograd_filter_transform",
]
