"""Max- and average-pooling kernels for NCHW activations.

Pooling has no filters and applies its global function per channel
(Section 2.1), which is why the channel-wise workload distribution
splits the *input* of a pooling layer across processors (Figure 7b).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .im2col import conv_output_hw


def _pool_windows(images: np.ndarray, kernel: int, stride: int,
                  padding: int, pad_value: float) -> np.ndarray:
    """All pooling windows as a strided view.

    Returns an array of shape (batch, channels, out_h, out_w, k, k).
    """
    if images.ndim != 4:
        raise ShapeError(
            f"pooling expects NCHW input, got shape {images.shape}")
    batch, channels, in_h, in_w = images.shape
    out_h, out_w = conv_output_hw(in_h, in_w, kernel, stride, padding)
    if padding > 0:
        padded = np.full(
            (batch, channels, in_h + 2 * padding, in_w + 2 * padding),
            pad_value, dtype=images.dtype)
        padded[:, :, padding:padding + in_h, padding:padding + in_w] = images
    else:
        padded = images
    stride_b, stride_c, stride_h, stride_w = padded.strides
    return np.lib.stride_tricks.as_strided(
        padded,
        shape=(batch, channels, out_h, out_w, kernel, kernel),
        strides=(stride_b, stride_c, stride_h * stride, stride_w * stride,
                 stride_h, stride_w),
        writeable=False,
    )


def max_pool(images: np.ndarray, kernel: int, stride: int,
             padding: int = 0) -> np.ndarray:
    """Max pooling; padding uses the dtype's lowest value so padded
    positions never win."""
    if np.issubdtype(images.dtype, np.integer):
        pad_value = np.iinfo(images.dtype).min
    else:
        pad_value = -np.inf
    windows = _pool_windows(images, kernel, stride, padding, pad_value)
    return windows.max(axis=(-1, -2))


def avg_pool(images: np.ndarray, kernel: int, stride: int, padding: int = 0,
             count_include_pad: bool = True) -> np.ndarray:
    """Average pooling.

    With ``count_include_pad`` (Caffe's default, matching the evaluated
    networks) the divisor is always ``kernel * kernel`` and padded
    positions contribute zeros.
    """
    windows = _pool_windows(
        images.astype(np.float32), kernel, stride, padding, 0.0)
    if count_include_pad:
        return windows.mean(axis=(-1, -2)).astype(np.float32)
    ones = np.ones(images.shape[2:], dtype=np.float32)[None, None]
    counts = _pool_windows(ones, kernel, stride, padding, 0.0).sum(
        axis=(-1, -2))
    return (windows.sum(axis=(-1, -2)) / counts).astype(np.float32)


def global_avg_pool(images: np.ndarray) -> np.ndarray:
    """Average over the full spatial extent, keeping 1x1 spatial dims."""
    if images.ndim != 4:
        raise ShapeError(
            f"pooling expects NCHW input, got shape {images.shape}")
    return images.astype(np.float32).mean(
        axis=(2, 3), keepdims=True).astype(np.float32)
