"""Identity-validated operand caches for the functional hot path.

The functional executor repeats two kinds of redundant work on every
inference: it re-packs *weight-side* operands (flattened/transposed
filter matrices, quantized filter codes, the gemmlowp weight-side
sums) even though weights rarely change, and it re-lowers the *same*
input through ``im2col`` once per processor placement of a cooperative
layer.  Real mobile stacks pre-pack weights at initialization time
(TFLite's mobile-GPU engine dequantizes filters once at upload,
Section 6 of the paper); :class:`OperandCache` brings the simulator's
hot path in line with that.

One cache class serves both uses because the correctness contract is
identical: a cached artifact is valid only while the *source array it
was derived from is the same object*.  Every lookup passes the source
array; the entry stores a strong reference to it and is rebuilt
whenever the caller presents a different array (weight surgery / QAT
installing new tensors, a new inference producing new activations).
Holding the strong reference also makes the identity test sound: the
source object cannot be garbage collected and its ``id`` can never be
recycled while the entry lives.

What identity validation cannot see is *in-place mutation* of the same
array object (``layer.weights *= 2``); callers that mutate arrays in
place must call :meth:`OperandCache.invalidate` (surfaced as
``LayerComputer.invalidate_weights``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

__all__ = ["OperandCache"]


class OperandCache:
    """Maps hashable keys to derived arrays, validating their source.

    Args:
        name: label used in :meth:`stats`.
        max_entries: optional LRU bound.  The activation-side (im2col)
            cache is bounded because column matrices are large and only
            the layers currently in flight can hit; the weight-side
            cache is typically unbounded (packed operands are the same
            order of size as the weights themselves).
    """

    def __init__(self, name: str = "operands",
                 max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.name = name
        self.max_entries = max_entries
        self._entries: "OrderedDict[Hashable, Tuple[Any, Any]]" = (
            OrderedDict())
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, source: Any,
            builder: Callable[[], Any]) -> Any:
        """The cached artifact for ``key``, rebuilt when stale.

        Args:
            key: hashable identity of the artifact (layer name, kind,
                channel range, ...).
            source: the array the artifact is derived from; the entry
                is valid only while the caller passes the *same object*.
            builder: zero-argument function producing the artifact.
        """
        entry = self._entries.get(key)
        if entry is not None and entry[0] is source:
            self.hits += 1
            if self.max_entries is not None:
                self._entries.move_to_end(key)
            return entry[1]
        self.misses += 1
        value = builder()
        self._entries[key] = (source, value)
        self._entries.move_to_end(key)
        if (self.max_entries is not None
                and len(self._entries) > self.max_entries):
            self._entries.popitem(last=False)
            self.evictions += 1
        return value

    def clear(self) -> None:
        """Drop all entries without counting them as invalidations.

        Used for routine lifecycle resets (e.g. releasing the previous
        inference's column matrices) where "invalidations" would be a
        misleading statistic; counters other than ``entries`` persist.
        """
        self._entries.clear()

    def invalidate(self, prefix: Optional[Hashable] = None) -> int:
        """Drop entries; returns how many were removed.

        Args:
            prefix: when given, drop only entries whose key is a tuple
                starting with ``prefix`` (conventionally the layer
                name); otherwise drop everything.
        """
        if prefix is None:
            dropped = len(self._entries)
            self._entries.clear()
        else:
            stale = [key for key in self._entries
                     if isinstance(key, tuple) and key[:1] == (prefix,)]
            for key in stale:
                del self._entries[key]
            dropped = len(stale)
        self.invalidations += dropped
        return dropped

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when cold)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters as a JSON-friendly dict."""
        return {
            "entries": float(len(self._entries)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "evictions": float(self.evictions),
            "invalidations": float(self.invalidations),
        }
