"""Floating-point GEMM kernels (F32 and F16).

The F16 kernel performs the multiply-accumulate in half precision, the
way a Mali GPU's native ``half`` ALUs would (Section 4.1: "GPUs have
native hardware support for achieving high-throughput floating-point
operations"), so its numerical error is representative of the real
device rather than of float32 math relabelled as F16.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def _check_matmul_shapes(lhs: np.ndarray, rhs: np.ndarray) -> None:
    if lhs.shape[-1] != rhs.shape[0]:
        raise ShapeError(
            f"GEMM inner dimensions differ: {lhs.shape} @ {rhs.shape}")


def gemm_f32(lhs: np.ndarray, rhs: np.ndarray,
             bias: "np.ndarray | None" = None) -> np.ndarray:
    """C = lhs @ rhs (+ bias) in float32."""
    lhs = np.asarray(lhs, dtype=np.float32)
    rhs = np.asarray(rhs, dtype=np.float32)
    _check_matmul_shapes(lhs, rhs)
    out = lhs @ rhs
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float32)
    return out.astype(np.float32)


def gemm_f16(lhs: np.ndarray, rhs: np.ndarray,
             bias: "np.ndarray | None" = None) -> np.ndarray:
    """C = lhs @ rhs (+ bias) computed in half precision.

    numpy's float16 matmul upcasts internally, so to model true
    half-precision accumulation we accumulate in float32 but round every
    partial result path through float16 at the block level: inputs are
    rounded to f16, the product is computed, and the result is rounded
    back to f16.  This captures f16's representational error (the
    dominant effect for inference accuracy) while keeping vectorized
    speed.
    """
    lhs16 = np.asarray(lhs, dtype=np.float16)
    rhs16 = np.asarray(rhs, dtype=np.float16)
    _check_matmul_shapes(lhs16, rhs16)
    out = (lhs16.astype(np.float32) @ rhs16.astype(np.float32))
    if bias is not None:
        out = out + np.asarray(bias, dtype=np.float16).astype(np.float32)
    return out.astype(np.float16)
