"""gemmlowp-style quantized GEMM with 32-bit integer accumulation.

This is the CPU arithmetic path of the paper's processor-friendly
quantization (Figure 9a): uint8 inputs and filters are combined with
integer multiply-accumulates; products of 8-bit values occupy 16 bits
and are accumulated into 32-bit integers; the accumulator is finally
requantized back to uint8 using the pre-trained output range.

The affine decomposition used below is the standard gemmlowp identity.
With ``real = s * (q - z)`` for LHS (activations) and RHS (weights):

    sum_k (ql - zl)(qr - zr)
        = sum_k ql*qr - zl * sum_k qr - zr * sum_k ql + K * zl * zr

so a single integer matmul plus row/column sums produces the exact
integer accumulator.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..quant.linear import requantize, requantize_prepared
from ..tensor import QuantParams


def qgemm_accumulate(lhs_q: np.ndarray, lhs_zero: int, rhs_q: np.ndarray,
                     rhs_zero: int,
                     bias_i32: "np.ndarray | None" = None,
                     rhs_i32: "np.ndarray | None" = None,
                     rhs_sums: "np.ndarray | None" = None) -> np.ndarray:
    """Integer accumulator of a quantized GEMM.

    Args:
        lhs_q: (m, k) uint8 activation codes.
        lhs_zero: activation zero point.
        rhs_q: (k, n) uint8 weight codes.
        rhs_zero: weight zero point.
        bias_i32: optional (n,) int32 bias already scaled to
            ``lhs_scale * rhs_scale`` units.
        rhs_i32: optional pre-widened ``rhs_q.astype(int32)`` -- weights
            are static across inferences, so callers may pack them once
            and skip the per-call widening.
        rhs_sums: optional pre-computed (1, n) weight-side column sums
            (``rhs_q.sum(axis=0)``), the ``zl * sum_k qr`` term of the
            affine decomposition; like ``rhs_i32`` it depends only on
            the weights.

    Returns:
        (m, n) int32 accumulators representing
        ``real / (lhs_scale * rhs_scale)``.
    """
    lhs_q = np.asarray(lhs_q)
    rhs_q = np.asarray(rhs_q)
    if lhs_q.dtype != np.uint8 or rhs_q.dtype != np.uint8:
        raise ShapeError(
            f"qgemm operands must be uint8, got {lhs_q.dtype} and "
            f"{rhs_q.dtype}")
    if lhs_q.shape[-1] != rhs_q.shape[0]:
        raise ShapeError(
            f"qgemm inner dimensions differ: {lhs_q.shape} @ {rhs_q.shape}")
    depth = lhs_q.shape[-1]
    if rhs_i32 is None:
        rhs_i32 = rhs_q.astype(np.int32)
    elif rhs_i32.shape != rhs_q.shape:
        raise ShapeError(
            f"rhs_i32 shape {rhs_i32.shape} != rhs shape {rhs_q.shape}")
    raw = lhs_q.astype(np.int32) @ rhs_i32
    lhs_sums = lhs_q.astype(np.int32).sum(axis=-1, keepdims=True)  # (m, 1)
    if rhs_sums is None:
        rhs_sums = rhs_q.astype(np.int32).sum(axis=0, keepdims=True)
    acc = (raw
           - np.int32(lhs_zero) * rhs_sums
           - np.int32(rhs_zero) * lhs_sums
           + np.int32(depth) * np.int32(lhs_zero) * np.int32(rhs_zero))
    if bias_i32 is not None:
        acc = acc + np.asarray(bias_i32, dtype=np.int32)
    return acc.astype(np.int32)


def quantize_bias(bias: np.ndarray, lhs_scale: float,
                  rhs_scale: float) -> np.ndarray:
    """Scale a float bias into i32 accumulator units.

    gemmlowp folds the bias into the accumulator before requantization,
    so the bias must be expressed in ``lhs_scale * rhs_scale`` units.
    """
    return np.round(np.asarray(bias, dtype=np.float64)
                    / (lhs_scale * rhs_scale)).astype(np.int32)


def fused_const_row(rhs_i32: np.ndarray, lhs_zero: int, rhs_zero: int,
                    bias_i32: np.ndarray) -> np.ndarray:
    """The weight-only constant row of the fused quantized GEMM.

    Of the four terms of the gemmlowp identity only
    ``- zr * sum_k ql`` depends on the activations; the remaining
    ``bias - zl * sum_k qr + K * zl * zr`` is folded into one row at
    compile time.  Integer addition wraps modulo 2^32 and is therefore
    associative, so re-associating the sum this way -- and returning
    the row already wrapped to int32 -- keeps the final int32
    accumulator byte-identical to :func:`qgemm_accumulate`.
    """
    depth = rhs_i32.shape[0]
    rhs_sums = rhs_i32.sum(axis=0, keepdims=True)
    const = (np.asarray(bias_i32, dtype=np.int64)
             - np.int64(lhs_zero) * rhs_sums
             + np.int64(depth) * np.int64(lhs_zero) * np.int64(rhs_zero))
    return const.astype(np.int32)


#: Largest GEMM depth for which the uint8 x uint8 accumulator provably
#: fits an int32 (and, a fortiori, is exactly representable in f64):
#: ``depth * 255 * 255 < 2**31``.
EXACT_GEMM_MAX_DEPTH = (2 ** 31 - 1) // (255 * 255)


def qgemm_fused(lhs_q: np.ndarray, rhs_i32: np.ndarray, rhs_zero: int,
                const_row: np.ndarray, mantissa: int, shift: int,
                output_params: QuantParams,
                relu: bool = False,
                rhs_f64: "np.ndarray | None" = None) -> np.ndarray:
    """Fully fused quantized GEMM: one matmul plus epilogue.

    The compiled execution path's integer kernel: all weight-side
    operands are pre-packed (``rhs_i32`` widened once,
    :func:`fused_const_row` folding bias and zero-point terms, the
    requantization multiplier pre-decomposed via
    :func:`~repro.quant.linear.prepare_requantize`), leaving a single
    integer matmul, the activation-side row-sum correction, the
    fixed-point requantization, and the fused ReLU clamp.

    When the caller supplies ``rhs_f64`` (the weight codes pre-widened
    to float64) the raw product matmul runs through BLAS dgemm instead
    of numpy's generic integer loop.  This is *exact*, not
    approximate: for ``depth <= EXACT_GEMM_MAX_DEPTH`` every partial
    sum of uint8 x uint8 products is an integer below 2**31 < 2**53,
    so each f64 addition is performed without rounding regardless of
    summation order, and the truncation back to int32 recovers the
    identical accumulator.  Callers must enforce the depth bound.

    Byte-identical to :func:`qgemm` over the same operands: the whole
    pipeline stays in wrapping int32 arithmetic (sums, products, and
    additions all agree with the int64-then-truncate formulation
    modulo 2^32 by associativity), and the epilogue is the identical
    expression.
    """
    if rhs_f64 is not None:
        raw = (lhs_q.astype(np.float64) @ rhs_f64).astype(np.int32)
        lhs_sums = np.sum(lhs_q, axis=-1, keepdims=True,
                          dtype=np.int32)
    else:
        lhs_i32 = lhs_q.astype(np.int32)
        raw = lhs_i32 @ rhs_i32
        lhs_sums = lhs_i32.sum(axis=-1, keepdims=True, dtype=np.int32)
    acc = raw - np.int32(rhs_zero) * lhs_sums + const_row
    out = requantize_prepared(acc, mantissa, shift, output_params)
    if relu:
        out = np.maximum(out, np.uint8(output_params.zero_point))
    return out


def qgemm(lhs_q: np.ndarray, lhs_params: QuantParams, rhs_q: np.ndarray,
          rhs_params: QuantParams, output_params: QuantParams,
          bias: "np.ndarray | None" = None,
          relu: bool = False,
          rhs_i32: "np.ndarray | None" = None,
          rhs_sums: "np.ndarray | None" = None,
          bias_i32: "np.ndarray | None" = None) -> np.ndarray:
    """Full quantized GEMM: accumulate, add bias, requantize to uint8.

    Args:
        lhs_q / rhs_q: uint8 codes of activations / weights.
        lhs_params / rhs_params: their quantization parameters.
        output_params: the pre-trained output range used to requantize.
        bias: optional float bias (folded in integer domain).
        relu: fuse a ReLU by clamping the output at the code that
            represents real zero (gemmlowp's fused activation).
        rhs_i32 / rhs_sums: optional pre-packed weight-side operands
            (see :func:`qgemm_accumulate`).
        bias_i32: optional pre-quantized bias in accumulator units;
            takes precedence over ``bias``.

    Returns:
        (m, n) uint8 output codes.
    """
    if bias_i32 is None and bias is not None:
        bias_i32 = quantize_bias(bias, lhs_params.scale, rhs_params.scale)
    acc = qgemm_accumulate(lhs_q, lhs_params.zero_point, rhs_q,
                           rhs_params.zero_point, bias_i32,
                           rhs_i32=rhs_i32, rhs_sums=rhs_sums)
    out = requantize(acc, lhs_params.scale, rhs_params.scale, output_params)
    if relu:
        out = np.maximum(out, np.uint8(output_params.zero_point))
    return out
