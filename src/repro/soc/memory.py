"""Shared CPU-GPU memory model.

Mobile SoCs give the CPU and the GPU the same physical LPDDR memory.
The paper's implementation (Section 6) exploits this with OpenCL
zero-copy buffers (``CL_MEM_ALLOC_HOST_PTR`` + ``clEnqueueMapBuffer``):
no data is copied between the processors, only mapped, at a small fixed
plus per-byte cache-maintenance cost.  The model also prices the
explicit-copy alternative so the zero-copy design choice can be ablated.
"""

from __future__ import annotations

import dataclasses

from ..errors import SimulationError


@dataclasses.dataclass(frozen=True)
class MemorySpec:
    """Bandwidth, energy, and CPU-GPU sharing costs of the SoC DRAM.

    Attributes:
        name: e.g. ``"LPDDR4-25.6"``.
        bandwidth_gb_s: effective streaming bandwidth available to one
            processor (GB/s); compute kernels are bounded by
            ``max(compute_time, bytes / bandwidth)``.
        energy_per_byte_nj: DRAM access energy -- the term that makes
            QUInt8's 4x smaller traffic an *energy* win (Section 7.3).
        map_fixed_us: fixed cost of clEnqueueMapBuffer/unmap.
        map_per_mb_us: per-MB cache maintenance cost of mapping.
        copy_per_mb_us: per-MB cost of an explicit CPU<->GPU copy (the
            non-zero-copy ablation; roughly 2x a memcpy at bandwidth).
        capacity_mb: physical LPDDR capacity in MB (1 MB = 10^6 bytes).
            CPU, GPU, and NPU all allocate from this one pool, so a
            plan whose peak footprint exceeds it cannot run -- the
            static property :mod:`repro.analysis.memory` checks.
    """

    name: str
    bandwidth_gb_s: float
    energy_per_byte_nj: float
    map_fixed_us: float
    map_per_mb_us: float
    copy_per_mb_us: float
    capacity_mb: float = 4096.0

    def __post_init__(self) -> None:
        if self.bandwidth_gb_s <= 0:
            raise SimulationError(
                f"{self.name}: bandwidth must be positive")
        if self.capacity_mb <= 0:
            raise SimulationError(
                f"{self.name}: capacity must be positive")

    @property
    def capacity_bytes(self) -> float:
        """Shared DRAM capacity in bytes."""
        return self.capacity_mb * 1e6

    def stream_seconds(self, nbytes: float) -> float:
        """Time to stream ``nbytes`` through DRAM."""
        if nbytes <= 0:
            return 0.0
        return nbytes / (self.bandwidth_gb_s * 1e9)

    def map_seconds(self, nbytes: float) -> float:
        """Zero-copy map/unmap cost for a buffer of ``nbytes``."""
        return (self.map_fixed_us
                + self.map_per_mb_us * nbytes / 1e6) * 1e-6

    def copy_seconds(self, nbytes: float) -> float:
        """Explicit CPU<->GPU copy cost for a buffer of ``nbytes``."""
        return (self.map_fixed_us
                + self.copy_per_mb_us * nbytes / 1e6) * 1e-6

    def traffic_energy_j(self, nbytes: float) -> float:
        """DRAM energy for ``nbytes`` of traffic."""
        return nbytes * self.energy_per_byte_nj * 1e-9
