"""The simulated execution timeline.

A :class:`Timeline` tracks when each processor is busy.  Executors
reserve time on resources; the timeline enforces that reservations on
one resource never overlap and records a labelled :class:`Segment` per
reservation, which the energy model and the profiling reports consume.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..errors import SimulationError
from ..tensor import DType

#: Resource names used throughout the simulator.  The NPU resource
#: exists on every timeline but is only used on NPU-equipped SoCs.
CPU = "cpu"
GPU = "gpu"
NPU = "npu"
RESOURCES = (CPU, GPU, NPU)

#: Segment kinds the simulator records; anything else in a timeline is
#: a sign of a corrupted or hand-built ledger.
KNOWN_KINDS = ("compute", "launch", "issue", "map", "sync", "copy")


@dataclasses.dataclass(frozen=True)
class Segment:
    """One busy interval of one resource.

    Attributes:
        resource: ``"cpu"`` or ``"gpu"``.
        start / end: simulated seconds.
        layer: name of the layer (or action) this time was spent on.
        kind: ``"compute"``, ``"launch"``, ``"issue"``, ``"map"``,
            ``"sync"``, or ``"copy"``.
        dtype: the compute data type for compute segments, else None.
    """

    resource: str
    start: float
    end: float
    layer: str
    kind: str
    dtype: Optional[DType] = None

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start


class Timeline:
    """Busy-interval ledger for the SoC's processors."""

    def __init__(self) -> None:
        self._segments: List[Segment] = []
        self._free: Dict[str, float] = {resource: 0.0
                                        for resource in RESOURCES}

    def free_at(self, resource: str) -> float:
        """Earliest time ``resource`` can accept new work."""
        self._check_resource(resource)
        return self._free[resource]

    def reserve(self, resource: str, duration: float, layer: str,
                kind: str, dtype: Optional[DType] = None,
                earliest: float = 0.0) -> Segment:
        """Occupy ``resource`` for ``duration`` seconds.

        The interval starts at ``max(free_at(resource), earliest)``.
        Zero-duration reservations are allowed (they only advance
        dependencies) but negative durations are rejected.

        Returns:
            The recorded segment (its ``end`` is the completion time).
        """
        self._check_resource(resource)
        if duration < 0:
            raise SimulationError(
                f"negative reservation of {duration}s on {resource} for "
                f"{layer!r}")
        start = max(self._free[resource], earliest)
        segment = Segment(resource=resource, start=start,
                          end=start + duration, layer=layer, kind=kind,
                          dtype=dtype)
        if duration > 0:
            self._segments.append(segment)
        self._free[resource] = segment.end
        return segment

    def wait_until(self, resource: str, time: float) -> None:
        """Block ``resource`` (idle, not busy) until ``time``."""
        self._check_resource(resource)
        if time > self._free[resource]:
            self._free[resource] = time

    # -- reporting ---------------------------------------------------------

    def segments(self, resource: Optional[str] = None) -> List[Segment]:
        """All recorded segments, optionally filtered by resource."""
        if resource is None:
            return list(self._segments)
        self._check_resource(resource)
        return [s for s in self._segments if s.resource == resource]

    def makespan(self) -> float:
        """Completion time of the last segment (0.0 if empty)."""
        if not self._segments:
            return 0.0
        return max(segment.end for segment in self._segments)

    def busy_seconds(self, resource: str) -> float:
        """Total busy time of ``resource``."""
        return sum(segment.duration
                   for segment in self.segments(resource))

    def validate(self) -> None:
        """Check the ledger's structural invariants.

        Verifies that every segment carries a known resource and kind
        label and a non-negative duration, that segments were recorded
        in per-resource start order, and that reservations on one
        resource never overlap.

        Raises:
            SimulationError: describing the first violation found.
        """
        for segment in self._segments:
            if segment.resource not in RESOURCES:
                raise SimulationError(
                    f"segment with unknown resource: {segment}")
            if segment.kind not in KNOWN_KINDS:
                raise SimulationError(
                    f"segment with unknown kind {segment.kind!r}: "
                    f"{segment}")
            if segment.end < segment.start:
                raise SimulationError(
                    f"segment with negative duration: {segment}")
        for resource in RESOURCES:
            recorded = self.segments(resource)
            if recorded != sorted(recorded, key=lambda s: s.start):
                raise SimulationError(
                    f"segments on {resource} recorded out of start "
                    "order")
            for before, after in zip(recorded, recorded[1:]):
                if after.start < before.end - 1e-12:
                    raise SimulationError(
                        f"overlapping segments on {resource}: "
                        f"{before} and {after}")

    def _check_resource(self, resource: str) -> None:
        if resource not in self._free:
            raise SimulationError(
                f"unknown resource {resource!r}; expected one of "
                f"{RESOURCES}")
