"""SoC specifications: Exynos 7420 (high-end) and Exynos 7880 (mid-range).

The numbers below are calibrated so the *relative* behaviour matches
what the paper measures on the physical chips:

* Exynos 7420 (Galaxy Note 5): the Mali-T760MP8 GPU is on average only
  ~1.40x faster than the CPU cluster at F32 (Section 3.1, Figure 5).
* Exynos 7880 (Galaxy A5): the octa-A53 CPU achieves ~26.1% *lower*
  latency than the Mali-T830MP3 GPU at F32 (Section 3.1).
* QUInt8 runs ~2.7x faster than F32 on the CPUs' NEON ALUs; F16 matches
  F32 on the CPU (no vector F16 support); F16 doubles GPU throughput;
  QUInt8 is slightly slower than F32 on the GPU (32-bit accumulation
  halves concurrency) -- Section 4.1, Figure 8.

Absolute magnitudes (GMAC/s, watts) are chosen to be plausible for the
silicon but are not claimed to match the authors' testbed; EXPERIMENTS.md
compares shapes, not absolute numbers.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..errors import SimulationError
from ..tensor import DType
from .memory import MemorySpec
from .processor import ProcessorKind, ProcessorSpec


@dataclasses.dataclass(frozen=True)
class SoCSpec:
    """A complete SoC: CPU cluster, GPU, shared memory, board power.

    Attributes:
        name: registry key (``"exynos7420"`` / ``"exynos7880"``).
        display_name: descriptive title used in reports.
        cpu / gpu: the two processors.
        memory: the shared DRAM.
        static_power_w: always-on power (rails, interconnect, DRAM
            background) charged for the whole makespan.
        sync_us: CPU-side cost of waiting on an accelerator completion
            event (the per-layer synchronization overhead of
            cooperative execution, Section 5).
        npu: optional neural processing unit, per the paper's Section
            8.3 extension; None for the physical Exynos 7420/7880.
    """

    name: str
    display_name: str
    cpu: ProcessorSpec
    gpu: ProcessorSpec
    memory: MemorySpec
    static_power_w: float
    sync_us: float
    npu: Optional[ProcessorSpec] = None

    def processor(self, kind: "ProcessorKind | str") -> ProcessorSpec:
        """The processor of a kind (``"cpu"``/``"gpu"``/``"npu"``).

        Raises:
            SimulationError: when asking for an NPU on an SoC without
            one.
        """
        if isinstance(kind, str):
            kind = ProcessorKind(kind.lower())
        if kind is ProcessorKind.CPU:
            return self.cpu
        if kind is ProcessorKind.GPU:
            return self.gpu
        if self.npu is None:
            raise SimulationError(f"{self.name} has no NPU")
        return self.npu

    @property
    def has_npu(self) -> bool:
        """True when the SoC carries a neural processing unit."""
        return self.npu is not None

    def resources(self) -> List[str]:
        """The processor resource names this SoC provides."""
        names = ["cpu", "gpu"]
        if self.npu is not None:
            names.append("npu")
        return names

    def sync_seconds(self) -> float:
        """CPU-accelerator synchronization cost in seconds."""
        return self.sync_us * 1e-6


EXYNOS_7420 = SoCSpec(
    name="exynos7420",
    display_name="Exynos 7420 (high-end, Galaxy Note 5)",
    cpu=ProcessorSpec(
        name="4xCortex-A57@2.1GHz + 4xCortex-A53@1.5GHz",
        kind=ProcessorKind.CPU,
        cores=4,                 # big cluster carries the GEMM work
        frequency_ghz=2.1,
        macs_per_cycle={
            DType.F32: 8.0,      # 2x128-bit NEON FMA pipes
            DType.F16: 8.0,      # emulated via F32 (no vector F16)
            DType.QUINT8: 19.0,  # gemmlowp 8-bit multiply-add chains
        },
        simple_ops_per_cycle=8.0,
        sustained_efficiency=0.30,
        ramp_macs=3.0e5,
        ramp_channels=0.0,
        kernel_launch_us=8.0,
        active_power_w=4.6,
        power_scale={DType.F32: 1.0, DType.F16: 1.0, DType.QUINT8: 0.78},
        idle_power_w=0.30,
    ),
    gpu=ProcessorSpec(
        name="Mali-T760MP8@700MHz",
        kind=ProcessorKind.GPU,
        cores=8,
        frequency_ghz=0.7,
        macs_per_cycle={
            DType.F32: 10.0,
            DType.F16: 20.0,     # native half-width ALUs: 2x F32
            DType.QUINT8: 8.6,   # i32 accumulation halves concurrency
        },
        simple_ops_per_cycle=16.0,
        sustained_efficiency=0.60,
        ramp_macs=3.0e6,
        ramp_channels=48.0,
        kernel_launch_us=55.0,
        active_power_w=1.9,
        power_scale={DType.F32: 1.0, DType.F16: 0.88, DType.QUINT8: 0.95},
        idle_power_w=0.20,
    ),
    memory=MemorySpec(
        name="LPDDR4-2x32 (effective)",
        bandwidth_gb_s=15.0,
        energy_per_byte_nj=0.15,
        map_fixed_us=18.0,
        map_per_mb_us=1.5,
        copy_per_mb_us=150.0,
        capacity_mb=4096.0,      # Galaxy Note 5 ships 4 GB LPDDR4
    ),
    static_power_w=0.55,
    sync_us=70.0,
)

EXYNOS_7880 = SoCSpec(
    name="exynos7880",
    display_name="Exynos 7880 (mid-range, Galaxy A5)",
    cpu=ProcessorSpec(
        name="8xCortex-A53@1.9GHz",
        kind=ProcessorKind.CPU,
        cores=8,
        frequency_ghz=1.9,
        macs_per_cycle={
            DType.F32: 4.0,      # one 128-bit NEON FMA pipe per A53
            DType.F16: 4.0,
            DType.QUINT8: 9.0,
        },
        simple_ops_per_cycle=4.0,
        sustained_efficiency=0.25,
        ramp_macs=2.5e5,
        ramp_channels=0.0,
        kernel_launch_us=10.0,
        active_power_w=2.6,
        power_scale={DType.F32: 1.0, DType.F16: 1.0, DType.QUINT8: 0.78},
        idle_power_w=0.25,
    ),
    gpu=ProcessorSpec(
        name="Mali-T830MP3@962MHz",
        kind=ProcessorKind.GPU,
        cores=3,
        frequency_ghz=0.962,
        macs_per_cycle={
            DType.F32: 8.0,
            DType.F16: 18.0,
            DType.QUINT8: 6.8,
        },
        simple_ops_per_cycle=12.0,
        sustained_efficiency=0.56,
        ramp_macs=1.2e6,     # a 3-core GPU saturates with less parallelism
        ramp_channels=16.0,
        kernel_launch_us=65.0,
        active_power_w=1.15,
        power_scale={DType.F32: 1.0, DType.F16: 0.88, DType.QUINT8: 0.95},
        idle_power_w=0.15,
    ),
    memory=MemorySpec(
        name="LPDDR3 (effective)",
        bandwidth_gb_s=8.0,
        energy_per_byte_nj=0.18,
        map_fixed_us=22.0,
        map_per_mb_us=2.0,
        copy_per_mb_us=250.0,
        capacity_mb=3072.0,      # Galaxy A5 (2017) ships 3 GB LPDDR3
    ),
    static_power_w=0.40,
    sync_us=85.0,
)

#: A DianNao/Edge-TPU-class mobile NPU: enormous 8-bit MAC throughput,
#: integer-only, driver-dispatched with a high per-kernel launch cost,
#: and needing very large, wide kernels to reach peak -- the profile
#: the paper's Section 8.3 extension anticipates.
_MOBILE_NPU = ProcessorSpec(
    name="mobile-NPU (int8 systolic array)",
    kind=ProcessorKind.NPU,
    cores=1,
    frequency_ghz=0.8,
    macs_per_cycle={DType.QUINT8: 512.0},     # 32x16 MAC array
    simple_ops_per_cycle=32.0,
    sustained_efficiency=0.35,
    ramp_macs=2.0e7,          # needs huge kernels to fill the array
    ramp_channels=96.0,       # and many output channels
    kernel_launch_us=110.0,   # driver round trip
    active_power_w=1.1,
    power_scale={DType.QUINT8: 1.0},
    idle_power_w=0.10,
)

#: Hypothetical NPU-equipped high-end SoC for the Section 8.3
#: extension experiments (e.g. Kirin 970-class, Section 8.3's example).
EXYNOS_7420_NPU = dataclasses.replace(
    EXYNOS_7420,
    name="exynos7420npu",
    display_name="Exynos 7420 + mobile NPU (hypothetical, Section 8.3)",
    npu=_MOBILE_NPU,
)

#: All simulated SoCs keyed by name.
SOCS = {spec.name: spec
        for spec in (EXYNOS_7420, EXYNOS_7880, EXYNOS_7420_NPU)}


def soc_by_name(name: str) -> SoCSpec:
    """Look up a SoC spec by registry name.

    Raises:
        KeyError: if the name is unknown (message lists known SoCs).
    """
    try:
        return SOCS[name]
    except KeyError:
        raise KeyError(
            f"unknown SoC {name!r}; known SoCs: {sorted(SOCS)}") from None
