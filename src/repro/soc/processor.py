"""Processor specifications for the simulated mobile SoCs.

A :class:`ProcessorSpec` captures everything the timing and energy
models need about a CPU cluster or a GPU: sustained per-data-type
throughput, how quickly that throughput ramps with kernel size (small
kernels underutilize a wide processor), fixed per-kernel overheads, and
power.  The per-dtype throughput encodes the paper's Section 4
findings:

* the CPU's NEON vector ALUs process many 8-bit integers per cycle, so
  QUInt8 runs ~2.5-3x faster than F32;
* the evaluated CPUs lack F16 vector ALUs, so F16 falls back to F32
  speed;
* the GPU natively supports F16 at twice the F32 rate;
* QUInt8 on the GPU is *slower* than F32 because products accumulate in
  32-bit integers, halving lane concurrency.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Mapping

from ..errors import SimulationError
from ..nn import LayerWork
from ..tensor import DType


class ProcessorKind(enum.Enum):
    """Whether a processor is a CPU cluster, a GPU, or an NPU.

    NPUs follow the paper's Section 8.3 extension: fixed-function
    integer accelerators (DianNao-style, Edge-TPU-style) that execute
    the GEMM-shaped work of convolutional and FC layers in 8-bit
    arithmetic, dispatched through a driver like the GPU.
    """

    CPU = "cpu"
    GPU = "gpu"
    NPU = "npu"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class ProcessorSpec:
    """Sustained performance and power model of one processor.

    Attributes:
        name: human-readable identifier (e.g. ``"4xA57+4xA53"``).
        kind: CPU or GPU.
        cores: number of cores in the cluster.
        frequency_ghz: core clock.
        macs_per_cycle: effective multiply-accumulates per cycle per
            core for each data type, *at full utilization*.
        simple_ops_per_cycle: lightweight element ops (max, add, copy)
            per cycle per core; data-type independent to first order.
        sustained_efficiency: fraction of peak a large, well-blocked
            GEMM sustains (cache misses, scheduling, ...).
        ramp_macs: kernel size (in MACs) at which utilization reaches
            50%; models the parallelism a kernel must expose before the
            processor's width is fed.  GPUs ramp much more slowly than
            CPUs, which is why GoogLeNet's many small convolutions
            favor CPU work and branch-level parallelism.
        ramp_channels: output-channel count at which the channel-
            occupancy factor reaches 50%.  Mobile GPU GEMM kernels
            parallelize over output channels, so kernels with few
            channels -- including the *halves* produced by channel-wise
            splitting -- underutilize a wide GPU.  CPUs tile over
            spatial rows as well and set this to 0 (no penalty).
        kernel_launch_us: fixed per-kernel cost -- OpenCL command
            dispatch for the GPU, thread-pool fork/join for the CPU.
        active_power_w: dynamic power while executing F32 work.
        power_scale: relative dynamic power per data type (integer
            ALUs burn less energy than float ones).
        idle_power_w: power while powered on but idle.
    """

    name: str
    kind: ProcessorKind
    cores: int
    frequency_ghz: float
    macs_per_cycle: Mapping[DType, float]
    simple_ops_per_cycle: float
    sustained_efficiency: float
    ramp_macs: float
    ramp_channels: float
    kernel_launch_us: float
    active_power_w: float
    power_scale: Mapping[DType, float]
    idle_power_w: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise SimulationError(f"{self.name}: cores must be >= 1")
        if not 0.0 < self.sustained_efficiency <= 1.0:
            raise SimulationError(
                f"{self.name}: sustained_efficiency must lie in (0, 1]")
        # CPUs and GPUs execute every data type; fixed-function NPUs
        # may support only their native integer type.
        required = ((DType.QUINT8,) if self.kind is ProcessorKind.NPU
                    else (DType.F32, DType.F16, DType.QUINT8))
        for dtype in required:
            if dtype not in self.macs_per_cycle:
                raise SimulationError(
                    f"{self.name}: missing MAC throughput for {dtype}")

    # -- throughput --------------------------------------------------------

    def peak_macs_per_s(self, dtype: DType) -> float:
        """Peak MAC throughput (MACs/second) for ``dtype``."""
        try:
            per_cycle = self.macs_per_cycle[dtype]
        except KeyError:
            raise SimulationError(
                f"{self.name} cannot execute {dtype} kernels") from None
        return per_cycle * self.cores * self.frequency_ghz * 1e9

    def sustained_macs_per_s(self, dtype: DType) -> float:
        """Sustained MAC throughput for large kernels."""
        return self.peak_macs_per_s(dtype) * self.sustained_efficiency

    def utilization(self, macs: float, channels: float = 1 << 20
                    ) -> float:
        """Fraction of sustained throughput a kernel achieves.

        The product of two saturating ramps: ``macs/(macs+ramp_macs)``
        (total parallel work) and ``channels/(channels+ramp_channels)``
        (channel occupancy of GPU GEMM kernels).  Tiny or narrow
        kernels cannot fill the processor's lanes and pay
        proportionally more per MAC.
        """
        if macs <= 0:
            return 1.0
        size_factor = macs / (macs + self.ramp_macs)
        if self.ramp_channels <= 0:
            return size_factor
        channel_factor = channels / (channels + self.ramp_channels)
        return size_factor * channel_factor

    def compute_seconds(self, work: LayerWork, dtype: DType) -> float:
        """Pure compute time of ``work`` executed in ``dtype``.

        MAC work runs at the dtype's sustained, utilization-scaled
        rate; simple ops run at the element-op rate.  Either term may
        be zero (pooling has no MACs; conv has few simple ops).
        """
        seconds = 0.0
        if work.macs > 0:
            rate = (self.sustained_macs_per_s(dtype)
                    * self.utilization(work.macs,
                                       work.parallel_channels))
            seconds += work.macs / rate
        if work.simple_ops > 0:
            ops_rate = (self.simple_ops_per_cycle * self.cores
                        * self.frequency_ghz * 1e9
                        * self.sustained_efficiency)
            seconds += work.simple_ops / ops_rate
        return seconds

    # -- power -------------------------------------------------------------

    def dynamic_power_w(self, dtype: DType) -> float:
        """Dynamic power while executing ``dtype`` work."""
        return self.active_power_w * self.power_scale.get(dtype, 1.0)

    @property
    def control_power_w(self) -> float:
        """Power while running control code (command issue, event
        waits, buffer maps) -- single-threaded driver work, far below
        the all-cores GEMM power."""
        return self.idle_power_w + 0.3 * (self.active_power_w
                                          - self.idle_power_w)

    def launch_seconds(self) -> float:
        """Fixed per-kernel launch overhead in seconds."""
        return self.kernel_launch_us * 1e-6
