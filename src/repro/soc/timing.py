"""The roofline timing model: how long one kernel takes on one processor.

A kernel's duration is ``max(compute, memory) + launch``:

* *compute* comes from the processor's per-dtype sustained MAC rate,
  scaled by the utilization ramp (small kernels cannot fill the lanes);
* *memory* is the streaming time of the kernel's activation and
  parameter traffic at the dtype's storage width -- this is where
  QUInt8's 4x smaller footprint pays off (Section 4.1);
* *launch* is the fixed per-kernel dispatch cost.

The processor-friendly quantization stores activations as QUInt8 for
both processors but uploads F16 filters for the GPU (Section 6), so the
storage data types of activations and parameters are separate inputs.
"""

from __future__ import annotations

import dataclasses

from ..nn import LayerWork
from ..tensor import DType
from .memory import MemorySpec
from .processor import ProcessorSpec


@dataclasses.dataclass(frozen=True)
class KernelCost:
    """Cost decomposition of one kernel on one processor.

    Attributes:
        compute_s: pure arithmetic time.
        memory_s: DRAM streaming time of activations + parameters.
        launch_s: fixed dispatch overhead.
    """

    compute_s: float
    memory_s: float
    launch_s: float

    @property
    def busy_s(self) -> float:
        """Time the processor is occupied: roofline of compute/memory."""
        return max(self.compute_s, self.memory_s)

    @property
    def total_s(self) -> float:
        """Busy time plus launch overhead."""
        return self.busy_s + self.launch_s

    @property
    def memory_bound(self) -> bool:
        """True when DRAM streaming dominates arithmetic."""
        return self.memory_s > self.compute_s


def kernel_traffic_bytes(work: LayerWork, activation_storage: DType,
                         param_storage: DType, batch: int = 1) -> float:
    """DRAM bytes moved by one kernel execution.

    Activation traffic scales with the batch; the filters are streamed
    once per kernel regardless of batch size -- a batch-N GEMM
    amortizes its weight traffic across the batch.
    """
    activation_bytes = ((work.input_elements + work.output_elements)
                        * batch * activation_storage.itemsize)
    param_bytes = work.param_elements * param_storage.itemsize
    return float(activation_bytes + param_bytes)


def kernel_cost(processor: ProcessorSpec, memory: MemorySpec,
                work: LayerWork, compute_dtype: DType,
                activation_storage: "DType | None" = None,
                param_storage: "DType | None" = None,
                batch: int = 1) -> KernelCost:
    """Cost of executing ``work`` on ``processor``.

    Args:
        processor: the executing processor.
        memory: the SoC DRAM.
        work: the kernel's batch-1 arithmetic work (possibly a split
            fraction of a layer, see :meth:`LayerWork.scaled`).
        compute_dtype: the data type the ALUs operate in.
        activation_storage: storage type of input/output activations
            (defaults to the compute type; the processor-friendly
            quantization passes QUInt8 here even for F16 GPU compute).
        param_storage: storage type of the filters (defaults to the
            activation storage type).
        batch: batch size of the kernel.  Compute and activation
            traffic scale with the batch (larger kernels also fill the
            utilization ramp better), parameter traffic and the launch
            overhead are paid once -- so per-sample cost falls as the
            batch grows.  ``batch=1`` reproduces the unbatched cost
            bit-for-bit.
    """
    activation_storage = activation_storage or compute_dtype
    param_storage = param_storage or activation_storage
    batched_work = work.batched(batch)
    compute_s = processor.compute_seconds(batched_work, compute_dtype)
    traffic = kernel_traffic_bytes(work, activation_storage,
                                   param_storage, batch)
    memory_s = memory.stream_seconds(traffic)
    return KernelCost(compute_s=compute_s, memory_s=memory_s,
                      launch_s=processor.launch_seconds())
