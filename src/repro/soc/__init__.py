"""Simulated mobile SoCs: processors, memory, timing, energy."""

from .clqueue import CommandEvent, CommandQueue, ISSUE_US
from .energy import EnergyBreakdown, EnergyModel
from .memory import MemorySpec
from .processor import ProcessorKind, ProcessorSpec
from .soc import (EXYNOS_7420, EXYNOS_7420_NPU, EXYNOS_7880, SOCS,
                  SoCSpec, soc_by_name)
from .timeline import CPU, GPU, NPU, RESOURCES, Segment, Timeline
from .timing import KernelCost, kernel_cost, kernel_traffic_bytes

__all__ = [
    "CommandEvent",
    "CommandQueue",
    "ISSUE_US",
    "EnergyBreakdown",
    "EnergyModel",
    "MemorySpec",
    "ProcessorKind",
    "ProcessorSpec",
    "EXYNOS_7420",
    "EXYNOS_7420_NPU",
    "EXYNOS_7880",
    "SOCS",
    "SoCSpec",
    "soc_by_name",
    "CPU",
    "GPU",
    "NPU",
    "RESOURCES",
    "Segment",
    "Timeline",
    "KernelCost",
    "kernel_cost",
    "kernel_traffic_bytes",
]
