"""An OpenCL-style in-order GPU command queue.

Models the GPU invocation pipeline the paper's implementation optimizes
(Section 6): the CPU *issues* a command (cheap, asynchronous), the GPU
*launches* it when the queue reaches it (fixed dispatch latency), the
kernel runs, and completion is observable through an event.  Because
issuing is asynchronous, the CPU can overlap its own portion of a layer
with the GPU's execution and only pay a synchronization cost when it
finally waits on the event -- exactly the paper's "asynchronous GPU
command issuing" optimization, which the ablation benchmarks can turn
off.
"""

from __future__ import annotations

import dataclasses

from ..tensor import DType
from .processor import ProcessorSpec
from .timeline import GPU, CPU, Timeline

#: CPU-side cost of enqueueing one OpenCL command (microseconds).
ISSUE_US = 4.0


@dataclasses.dataclass(frozen=True)
class CommandEvent:
    """Completion event of an enqueued GPU command."""

    layer: str
    issued_at: float
    completed_at: float


class CommandQueue:
    """In-order command queue for a driver-dispatched accelerator.

    Models the GPU's OpenCL queue by default; NPUs are dispatched the
    same way (the CPU issues, a driver launches, completion surfaces
    through an event), so NPU-equipped SoCs instantiate a second queue
    on the ``"npu"`` resource.

    Args:
        timeline: the shared SoC timeline.
        device: the accelerator's processor spec (for launch overhead).
        async_issue: when False, the CPU blocks until each command
            *completes* before continuing -- the synchronous-issue
            ablation of the paper's Section 6 optimization.
        resource: timeline resource the kernels occupy.
    """

    def __init__(self, timeline: Timeline, device: ProcessorSpec,
                 async_issue: bool = True, resource: str = GPU) -> None:
        self._timeline = timeline
        self._device = device
        self._resource = resource
        self.async_issue = async_issue

    def enqueue(self, layer: str, busy_seconds: float, dtype: DType,
                ready: float = 0.0) -> CommandEvent:
        """Issue one kernel and return its completion event.

        The CPU is occupied for the (small) issue cost; the GPU runs
        the launch overhead plus the kernel as soon as the issue has
        landed, earlier commands have drained (in-order queue
        semantics), and the kernel's input data is ``ready``.
        """
        issue = self._timeline.reserve(
            CPU, ISSUE_US * 1e-6, layer, "issue")
        launch = self._timeline.reserve(
            self._resource, self._device.launch_seconds(), layer,
            "launch", earliest=issue.end)
        kernel = self._timeline.reserve(
            self._resource, busy_seconds, layer, "compute", dtype=dtype,
            earliest=max(launch.end, ready))
        event = CommandEvent(layer=layer, issued_at=issue.end,
                             completed_at=kernel.end)
        if not self.async_issue:
            # Synchronous mode: the CPU spins until completion.
            self._timeline.wait_until(CPU, event.completed_at)
        return event

    def wait(self, event: CommandEvent, sync_seconds: float) -> float:
        """CPU waits for ``event``; returns the time the wait resolves.

        The CPU idles until the command completes, then pays the event
        synchronization cost (cache maintenance, driver wake-up).
        """
        self._timeline.wait_until(CPU, event.completed_at)
        segment = self._timeline.reserve(
            CPU, sync_seconds, event.layer, "sync")
        return segment.end
