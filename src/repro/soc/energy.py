"""The SoC energy model.

Energy is integrated over the simulated timeline:

* **dynamic** -- each busy segment is charged its processor's dynamic
  power for the segment's data type (integer work burns less than
  float work);
* **idle** -- a processor that is powered but not busy draws its idle
  power for the remainder of the makespan;
* **static** -- board rails, interconnect, and DRAM background draw a
  constant power for the whole makespan;
* **DRAM traffic** -- every byte moved costs a fixed access energy;
  this is the term the paper credits for part of uLayer's energy win
  ("the reduction in the memory bandwidth consumed by accessing data
  using 8-bit QUInt8 instead of 32-bit F32", Section 7.3).

Because dynamic energy is work-proportional, splitting a layer across
two processors costs roughly the same dynamic energy as running it on
one -- but the shorter makespan cuts the idle and static terms, which
is how uLayer ends up *more* energy-efficient than the single-processor
baselines despite using both processors at once (Figure 18).
"""

from __future__ import annotations

import dataclasses

from .soc import SoCSpec
from .timeline import Timeline


@dataclasses.dataclass(frozen=True)
class EnergyBreakdown:
    """Per-cause energy of one inference, in joules."""

    dynamic_j: float
    idle_j: float
    static_j: float
    dram_j: float

    @property
    def total_j(self) -> float:
        """Total SoC energy of the inference."""
        return self.dynamic_j + self.idle_j + self.static_j + self.dram_j

    @property
    def total_mj(self) -> float:
        """Total energy in millijoules."""
        return self.total_j * 1e3


class EnergyModel:
    """Integrates a timeline plus DRAM traffic into an energy figure."""

    def __init__(self, soc: SoCSpec) -> None:
        self._soc = soc

    def energy(self, timeline: Timeline,
               traffic_bytes: float) -> EnergyBreakdown:
        """Energy of an execution described by ``timeline``.

        Args:
            timeline: the completed execution timeline.
            traffic_bytes: total DRAM bytes moved by all kernels.
        """
        makespan = timeline.makespan()
        dynamic = 0.0
        busy = {resource: 0.0 for resource in self._soc.resources()}
        for segment in timeline.segments():
            processor = self._soc.processor(segment.resource)
            if segment.kind == "compute" and segment.dtype is not None:
                power = processor.dynamic_power_w(segment.dtype)
            else:
                # Launch/issue/map/sync overheads run single-threaded
                # control code, far below the all-cores GEMM power.
                power = processor.control_power_w
            dynamic += power * segment.duration
            busy[segment.resource] += segment.duration
        idle = sum(
            self._soc.processor(resource).idle_power_w
            * max(0.0, makespan - busy[resource])
            for resource in self._soc.resources())
        static = self._soc.static_power_w * makespan
        dram = self._soc.memory.traffic_energy_j(traffic_bytes)
        return EnergyBreakdown(dynamic_j=dynamic, idle_j=idle,
                               static_j=static, dram_j=dram)
