"""The discrete-event serving simulator.

Drives a request trace through a :class:`~repro.serve.fleet.Fleet`
under a :class:`~repro.serve.scheduler.Scheduler`.  The event loop is a
classic design of three event kinds -- request arrivals, request
completions, and scheduler timer wakeups -- with a central pending
queue.  After every event the scheduler is polled for actions until it
has none; each started request (or request batch) advances the target
device's clocks immediately (service times are deterministic, so the
completion instant is known at dispatch), and the completion event
exists only to create the next scheduling opportunity.  Wakeup events
come from :meth:`~repro.serve.scheduler.Scheduler.next_wakeup_s`: a
batching scheduler holding a partial batch names the instant its
timeout window expires, and the simulator polls it again exactly then.

Determinism: events are ordered by ``(time, insertion sequence)``, the
fleet's executor is deterministic, and workloads are seeded -- so one
seed yields one, reproducible, serving history.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .fleet import Completion, Fleet
from .scheduler import Scheduler, Shed, Start, StartBatch
from .workload import Request


@dataclasses.dataclass(frozen=True)
class ShedRecord:
    """One request dropped by admission control."""

    request: Request
    shed_s: float
    reason: str

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly record."""
        return {
            "request_id": self.request.request_id,
            "model": self.request.model,
            "arrival_s": self.request.arrival_s,
            "slo_s": self.request.slo_s,
            "shed_s": self.shed_s,
            "reason": self.reason,
        }


@dataclasses.dataclass
class ServingResult:
    """Everything one simulation produced.

    Attributes:
        scheduler: name of the policy that ran.
        completions: served requests, in dispatch order.
        sheds: requests dropped by admission control.
        unserved: requests still pending when the trace drained
            (possible only with admission control disabled).
        makespan_s: time of the last completion (or last arrival).
        fleet: the fleet in its final state (clocks, counters, plan
            cache).
    """

    scheduler: str
    completions: List[Completion]
    sheds: List[ShedRecord]
    unserved: List[Request]
    makespan_s: float
    fleet: Fleet

    @property
    def num_offered(self) -> int:
        """Total requests submitted."""
        return (len(self.completions) + len(self.sheds)
                + len(self.unserved))


class ServingSimulator:
    """Runs request traces against one fleet under one scheduler."""

    def __init__(self, fleet: Fleet, scheduler: Scheduler) -> None:
        self.fleet = fleet
        self.scheduler = scheduler

    def run(self, requests: Sequence[Request]) -> ServingResult:
        """Simulate one trace to completion."""
        events: List[Tuple[float, int, Optional[Request]]] = []
        sequence = 0
        for request in sorted(requests,
                              key=lambda r: (r.arrival_s, r.request_id)):
            heapq.heappush(events, (request.arrival_s, sequence, request))
            sequence += 1
        pending: List[Request] = []
        completions: List[Completion] = []
        sheds: List[ShedRecord] = []
        scheduled_wakeups: Set[float] = set()
        last_arrival = max((r.arrival_s for r in requests), default=0.0)
        while events:
            now, _, arrived = heapq.heappop(events)
            if arrived is not None:
                pending.append(arrived)
            while True:
                action = self.scheduler.next_action(pending, self.fleet,
                                                    now)
                if action is None:
                    break
                if isinstance(action, Shed):
                    pending.remove(action.request)
                    sheds.append(ShedRecord(request=action.request,
                                            shed_s=now,
                                            reason=action.reason))
                    continue
                if isinstance(action, StartBatch):
                    for request in action.requests:
                        pending.remove(request)
                    device = self.fleet.device(action.device_id)
                    batch = self.fleet.execute_batch(
                        list(action.requests), device, action.mechanism,
                        now)
                    completions.extend(batch)
                    heapq.heappush(events,
                                   (batch[0].finish_s, sequence, None))
                    sequence += 1
                    continue
                assert isinstance(action, Start)
                pending.remove(action.request)
                device = self.fleet.device(action.device_id)
                completion = self.fleet.execute(
                    action.request, device, action.mechanism, now)
                completions.append(completion)
                heapq.heappush(events,
                               (completion.finish_s, sequence, None))
                sequence += 1
            # A batching scheduler may be holding a partial batch for
            # its timeout window; schedule a timer poll at the flush
            # instant (deduplicated -- one poll per instant suffices).
            wakeup = self.scheduler.next_wakeup_s(pending, self.fleet,
                                                  now)
            if (wakeup is not None and wakeup > now
                    and wakeup not in scheduled_wakeups):
                scheduled_wakeups.add(wakeup)
                heapq.heappush(events, (wakeup, sequence, None))
                sequence += 1
        makespan = max([last_arrival]
                       + [c.finish_s for c in completions])
        return ServingResult(scheduler=self.scheduler.name,
                             completions=completions, sheds=sheds,
                             unserved=list(pending), makespan_s=makespan,
                             fleet=self.fleet)
