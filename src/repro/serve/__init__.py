"""The serving subsystem: multi-request, multi-device simulation.

Layers an SLO-aware serving simulator on top of the single-inference
μLayer runtime (out of the paper's scope, but squarely on the
reproduction's north star): seeded workload generators produce request
traces, a fleet of simulated SoC devices executes them through the real
partitioner/executor stack behind a shared plan cache, and pluggable
schedulers decide who runs where -- including an EDF policy that picks
the execution mechanism per request using the latency predictor.
"""

from .config import ServeConfig
from .fleet import (Completion, Device, Fleet, SINGLE_PROCESSOR_DTYPES,
                    default_slos, plan_resources)
from .metrics import ServingMetrics, percentile
from .scheduler import (Action, DynamicBatchScheduler, EDFScheduler,
                        FIFOScheduler, LeastLoadedScheduler, Scheduler,
                        Shed, Start, StartBatch, make_scheduler)
from .simulator import ServingResult, ServingSimulator, ShedRecord
from .workload import (BurstyWorkload, PoissonWorkload, Request,
                       TenantClass, TraceSegment, TraceWorkload,
                       WorkloadGenerator, bursty_for_rate,
                       diurnal_trace, flash_crowd_trace, load_trace)

__all__ = [
    "ServeConfig",
    "Completion",
    "Device",
    "Fleet",
    "SINGLE_PROCESSOR_DTYPES",
    "default_slos",
    "plan_resources",
    "ServingMetrics",
    "percentile",
    "Action",
    "DynamicBatchScheduler",
    "EDFScheduler",
    "FIFOScheduler",
    "LeastLoadedScheduler",
    "Scheduler",
    "Shed",
    "Start",
    "StartBatch",
    "make_scheduler",
    "ServingResult",
    "ServingSimulator",
    "ShedRecord",
    "BurstyWorkload",
    "PoissonWorkload",
    "Request",
    "TenantClass",
    "TraceSegment",
    "TraceWorkload",
    "WorkloadGenerator",
    "bursty_for_rate",
    "diurnal_trace",
    "flash_crowd_trace",
    "load_trace",
]
