"""A fleet of simulated SoC devices behind one shared plan cache.

The fleet is the serving layer's device model: N SoC instances (possibly
of mixed SoC types, e.g. Exynos 7420 flagships next to 7880 mid-rangers)
that each execute one request at a time *per resource set*.  Every
device keeps one clock per processor, so a μLayer co-execution occupies
the whole SoC while a single-processor request occupies only its own
processor -- which is exactly the latency-versus-throughput trade-off
between the paper's μLayer and network-to-processor mechanisms
(Sections 2.2 and 7), now exposed to a scheduler.

Per-request service times are not modelled analytically: each dispatch
runs the real :class:`~repro.runtime.executor.Executor` on the cached
plan and advances the device clock by the executor-reported
:class:`~repro.runtime.metrics.InferenceResult` latency.  Plans are
built once per ``(model, soc, mechanism, policy)`` through the shared
:class:`~repro.runtime.plan_cache.PlanCache`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import (TYPE_CHECKING, Dict, List, Mapping, Optional,
                    Sequence, Tuple)

from ..models import build_model
from ..nn import Graph
from ..runtime import (Executor, InferenceResult, LayerAssignment,
                       Partitioner, PartitionerConfig, PROCESSOR_FRIENDLY,
                       QuantizationPolicy, single_processor_plan,
                       uniform_policy)
from ..runtime.plan import ExecutionPlan
from ..runtime.plan_cache import PlanCache, PlanKey
from ..runtime.workers import WorkerPool
from ..soc import SoCSpec, soc_by_name
from ..tensor import DType
from .workload import Request

if TYPE_CHECKING:   # pragma: no cover - typing only (avoids a cycle)
    from ..quant.calibrate import CalibrationTable
    from ..tune import Tuner

#: Compute dtype of each single-processor mechanism -- the fastest
#: per-processor data type per the paper (Section 7.2, Section 8.3).
SINGLE_PROCESSOR_DTYPES: Dict[str, DType] = {
    "cpu": DType.QUINT8,
    "gpu": DType.F16,
    "npu": DType.QUINT8,
}

#: Small slack for floating-point clock comparisons.
_EPS = 1e-12

#: Per worker process: shared machinery of one (SoC, policy), so a
#: warm-up worker fits each SoC's latency predictor once instead of
#: once per plan.
_WARM_CONTEXTS: Dict[Tuple[str, QuantizationPolicy], "_SoCContext"] = {}


def _warm_plan_unit(item: Tuple[str, QuantizationPolicy, str, str, int]
                    ) -> Tuple["PlanKey", ExecutionPlan]:
    """Build one (model, SoC, mechanism, batch) plan; module-level so
    :func:`~repro.harness.parallel.parallel_map` can run warm-up in
    worker processes."""
    soc_name, policy, model, mechanism, batch = item
    context = _WARM_CONTEXTS.get((soc_name, policy))
    if context is None:
        context = _SoCContext(soc_by_name(soc_name), policy)
        _WARM_CONTEXTS[(soc_name, policy)] = context
    graph = build_model(model, with_weights=False)
    key = PlanKey(model=model, soc=soc_name, mechanism=mechanism,
                  policy=context.policy_name(mechanism), batch=batch)
    return key, context.build_plan(graph, mechanism, batch=batch)


def plan_resources(plan: ExecutionPlan, graph: Graph) -> Tuple[str, ...]:
    """The processors a plan actually touches, sorted.

    A μLayer plan that co-executes owns CPU and GPU (and NPU where
    split three ways); a single-processor plan owns one processor --
    except NPU plans, whose unsupported layers fall back to the host
    CPU, so they occupy both.  Deriving occupancy from the plan keeps
    the device model honest for scheduling and utilization.
    """
    used: set = set()
    for name in graph.compute_layers():
        placement = plan.placement_of(name)
        if isinstance(placement, LayerAssignment):
            used.update(placement.shares())
        else:
            used.add(placement)
    return tuple(sorted(used))


class _SoCContext:
    """Machinery shared by all fleet devices of one SoC type.

    Holds the partitioner (and therefore the fitted latency predictor)
    for the serving policy, one estimator partitioner per
    single-processor mechanism (each under its own uniform policy), and
    the executor.  Building this once per SoC type amortizes predictor
    calibration across the devices and requests of a simulation.
    """

    def __init__(self, soc: SoCSpec, policy: QuantizationPolicy,
                 workers: Optional[int] = None,
                 pool: Optional[WorkerPool] = None,
                 tuner: "Optional[Tuner]" = None) -> None:
        self.soc = soc
        self.policy = policy
        self.partitioner = Partitioner(soc, policy=policy)
        self.executor = Executor(soc, workers=workers, pool=pool,
                                 tuner=tuner)
        config = PartitionerConfig(enable_channel_distribution=False,
                                   enable_branch_distribution=False)
        self._estimators: Dict[str, Partitioner] = {
            "mulayer": self.partitioner}
        for resource, dtype in SINGLE_PROCESSOR_DTYPES.items():
            if resource == "npu" and not soc.has_npu:
                continue
            self._estimators[resource] = Partitioner(
                soc, policy=uniform_policy(dtype), config=config)

    def mechanisms(self) -> Tuple[str, ...]:
        """Mechanisms this SoC supports, μLayer first."""
        names = ["mulayer", "cpu", "gpu"]
        if self.soc.has_npu:
            names.append("npu")
        return tuple(names)

    def policy_name(self, mechanism: str) -> str:
        """Name of the quantization policy a mechanism runs under."""
        if mechanism == "mulayer":
            return self.policy.name
        return uniform_policy(SINGLE_PROCESSOR_DTYPES[mechanism]).name

    def build_plan(self, graph: Graph, mechanism: str,
                   batch: int = 1) -> ExecutionPlan:
        """Partition ``graph`` for ``mechanism`` (uncached)."""
        if mechanism == "mulayer":
            return self.partitioner.plan(graph, batch=batch)
        return single_processor_plan(
            graph, mechanism,
            uniform_policy(SINGLE_PROCESSOR_DTYPES[mechanism]),
            batch=batch)

    def estimate_service_s(self, graph: Graph, mechanism: str,
                           plan: ExecutionPlan,
                           batch: int = 1) -> float:
        """Predictor-based service-time estimate of one request.

        Sums the per-layer latency estimates of the plan's placements
        (the same estimates the partitioner optimizes), ignoring
        cross-layer pipelining -- a slightly conservative figure, which
        is the right bias for admission control.  With ``batch > 1``
        the estimate is for the whole batch executing as one inference.
        """
        estimator = self._estimators[mechanism]
        total = 0.0
        for name in graph.compute_layers():
            placement = plan.placement_of(name)
            if isinstance(placement, LayerAssignment):
                shares = placement.shares()
            else:
                shares = {placement: 1.0}
            total += estimator.estimate_shares_latency(graph, name,
                                                       shares,
                                                       batch=batch)
        return total


@dataclasses.dataclass
class Device:
    """One simulated SoC instance with per-processor clocks.

    Attributes:
        device_id: stable identifier (``dev0:exynos7420`` style).
        soc: the SoC specification.
        free_s: per-resource time at which the processor next idles.
        busy_s: per-resource cumulative occupied time.
        completed: number of requests served.
    """

    device_id: str
    soc: SoCSpec
    free_s: Dict[str, float]
    busy_s: Dict[str, float]
    completed: int = 0

    @staticmethod
    def make(device_id: str, soc: SoCSpec) -> "Device":
        """A fresh idle device."""
        return Device(device_id=device_id, soc=soc,
                      free_s={r: 0.0 for r in soc.resources()},
                      busy_s={r: 0.0 for r in soc.resources()})

    def earliest_start_s(self, resources: Sequence[str],
                         now: float) -> float:
        """Earliest time a resource set is entirely free."""
        return max([now] + [self.free_s[r] for r in resources])

    def idle_now(self, resources: Sequence[str], now: float) -> bool:
        """True when the resource set could be claimed at ``now``."""
        return self.earliest_start_s(resources, now) <= now + _EPS

    def backlog_s(self, now: float) -> float:
        """Remaining busy time of the most-loaded resource."""
        return max(0.0, max(self.free_s.values()) - now)

    def total_busy_s(self) -> float:
        """Cumulative occupied time summed over resources."""
        return sum(self.busy_s.values())

    def occupy(self, resources: Sequence[str], start_s: float,
               end_s: float, count: int = 1) -> None:
        """Reserve a resource set for [start, end) serving ``count``
        requests (one batched dispatch completes the whole batch)."""
        for resource in resources:
            self.free_s[resource] = end_s
            self.busy_s[resource] += end_s - start_s
        self.completed += count

    def utilization(self, horizon_s: float) -> Dict[str, float]:
        """Per-resource busy fraction over a horizon."""
        if horizon_s <= 0.0:
            return {resource: 0.0 for resource in self.busy_s}
        return {resource: busy / horizon_s
                for resource, busy in self.busy_s.items()}


@dataclasses.dataclass(frozen=True)
class Completion:
    """Record of one served request.

    Attributes:
        request: the request served.
        device_id / mechanism: where and how it ran.
        start_s / finish_s: dispatch and completion times.
        result: the executor's full inference result (shared by all
            requests of one batched dispatch).
        batch_size: how many requests executed together; the batch's
            whole makespan is attributed to every member, so a
            request's latency never improves just because it was
            batched -- only its queue wait and the fleet's throughput
            do.
    """

    request: Request
    device_id: str
    mechanism: str
    start_s: float
    finish_s: float
    result: InferenceResult
    batch_size: int = 1

    @property
    def service_s(self) -> float:
        """Pure execution time on the device."""
        return self.finish_s - self.start_s

    @property
    def queue_wait_s(self) -> float:
        """Arrival-to-dispatch wait (batching's latency cost shows up
        here: a request may wait for the batch window to fill)."""
        return self.start_s - self.request.arrival_s

    @property
    def sojourn_s(self) -> float:
        """Arrival-to-completion latency (queueing included)."""
        return self.finish_s - self.request.arrival_s

    @property
    def met_slo(self) -> bool:
        """True when the request finished within its SLO."""
        return self.finish_s <= self.request.deadline_s + _EPS

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly record (without per-layer traces)."""
        return {
            "request_id": self.request.request_id,
            "model": self.request.model,
            "arrival_s": self.request.arrival_s,
            "slo_s": self.request.slo_s,
            "device": self.device_id,
            "mechanism": self.mechanism,
            "batch_size": self.batch_size,
            "start_s": self.start_s,
            "finish_s": self.finish_s,
            "service_s": self.service_s,
            "queue_wait_s": self.queue_wait_s,
            "sojourn_s": self.sojourn_s,
            "met_slo": self.met_slo,
            "result": self.result.to_dict(include_traces=False),
        }


class Fleet:
    """N devices, shared per-SoC machinery, one plan cache.

    The executor is deterministic, so the
    :class:`~repro.runtime.metrics.InferenceResult` of one
    ``(model, SoC type, mechanism, batch)`` configuration is identical
    on every dispatch; with ``memoize_results`` (the default) the fleet
    runs each configuration once and replays the result, which is what
    makes 10^5-request cluster sweeps affordable without changing a
    single reported number.

    Args:
        socs: the SoC of each device, in device order.
        policy: quantization policy for μLayer co-execution.
        plan_cache: externally shared cache; a fresh one by default.
        memoize_results: replay the deterministic executor result per
            configuration instead of re-executing it per request.
        compiled: request compiled (fused, arena-planned) execution
            for functional runs.  Fleet dispatches are timing-only
            (no input data), where compiled and functional execution
            report identical latencies, so this is a passthrough for
            callers that feed the fleet's executors data directly.
        workers: worker threads for compiled functional execution.
            With ``workers > 1`` the fleet owns one shared
            :class:`~repro.runtime.workers.WorkerPool` and every
            replica's executor dispatches onto it -- replicas share
            the pool instead of spawning one thread team each.
            ``None`` or 1 keeps the serial loop.
        tuner: a shared :class:`~repro.tune.Tuner`; when set, every
            program the fleet compiles (including
            :meth:`warm_plans`'s program warming) goes through
            kernel-variant autotuning against the tuner's single
            :class:`~repro.tune.TuneCache` -- each unique step
            signature is tuned once fleet-wide, never once per
            replica.
    """

    def __init__(self, socs: Sequence[SoCSpec],
                 policy: QuantizationPolicy = PROCESSOR_FRIENDLY,
                 plan_cache: Optional[PlanCache] = None,
                 memoize_results: bool = True,
                 compiled: bool = False,
                 workers: Optional[int] = None,
                 tuner: "Optional[Tuner]" = None) -> None:
        if not socs:
            raise ValueError("a fleet needs at least one device")
        self.policy = policy
        self.plan_cache = plan_cache if plan_cache is not None else (
            PlanCache())
        self.memoize_results = memoize_results
        self.compiled = compiled
        self.tuner = tuner
        self.workers = 1 if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._pool: Optional[WorkerPool] = (
            WorkerPool(self.workers) if self.workers > 1 else None)
        self._contexts: Dict[str, _SoCContext] = {}
        self.devices: List[Device] = []
        for index, soc in enumerate(socs):
            if soc.name not in self._contexts:
                self._contexts[soc.name] = _SoCContext(
                    soc, policy, workers=self.workers, pool=self._pool,
                    tuner=tuner)
            self.devices.append(
                Device.make(f"dev{index}:{soc.name}", soc))
        self._graphs: Dict[str, Graph] = {}
        self._estimates: Dict[Tuple[str, str, str, int], float] = {}
        self._resources: Dict[Tuple[str, str, str, int],
                              Tuple[str, ...]] = {}
        self._isolated: Dict[Tuple[str, str], float] = {}
        self._results: Dict[Tuple[str, str, str, int],
                            InferenceResult] = {}

    @classmethod
    def build(cls, soc_names: Sequence[str], num_devices: int,
              policy: QuantizationPolicy = PROCESSOR_FRIENDLY,
              plan_cache: Optional[PlanCache] = None,
              memoize_results: bool = True,
              compiled: bool = False,
              workers: Optional[int] = None,
              tuner: "Optional[Tuner]" = None) -> "Fleet":
        """A fleet of ``num_devices`` cycling through ``soc_names``."""
        if num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if not soc_names:
            raise ValueError("soc_names must not be empty")
        cycle = itertools.cycle([soc_by_name(name) for name in soc_names])
        socs = [next(cycle) for _ in range(num_devices)]
        return cls(socs, policy=policy, plan_cache=plan_cache,
                   memoize_results=memoize_results, compiled=compiled,
                   workers=workers, tuner=tuner)

    def close(self) -> None:
        """Stop the shared worker pool, if any (idempotent)."""
        if self._pool is not None:
            self._pool.close()

    # -- lookups -------------------------------------------------------------

    def device(self, device_id: str) -> Device:
        """The device with a given id.

        Raises:
            KeyError: for unknown ids.
        """
        for device in self.devices:
            if device.device_id == device_id:
                return device
        raise KeyError(f"no device {device_id!r} in the fleet")

    def context(self, soc_name: str) -> _SoCContext:
        """The shared per-SoC machinery."""
        return self._contexts[soc_name]

    def graph(self, model: str) -> Graph:
        """The (weight-less) graph of a model, built once."""
        cached = self._graphs.get(model)
        if cached is None:
            cached = build_model(model, with_weights=False)
            self._graphs[model] = cached
        return cached

    def mechanisms(self, device: Device) -> Tuple[str, ...]:
        """Mechanisms available on one device."""
        return self._contexts[device.soc.name].mechanisms()

    # -- planning and execution ----------------------------------------------

    def plan_for(self, model: str, device: Device, mechanism: str,
                 batch: int = 1) -> ExecutionPlan:
        """The (cached) plan of a configuration.

        Plans are cached per batch size; a batch-B dispatch always
        looks up (and builds) the batch-B entry, never reuses another
        batch's splits.
        """
        context = self._contexts[device.soc.name]
        key = PlanKey(model=model, soc=device.soc.name,
                      mechanism=mechanism,
                      policy=context.policy_name(mechanism),
                      batch=batch)
        graph = self.graph(model)
        return self.plan_cache.get_or_build(
            key, lambda: context.build_plan(graph, mechanism,
                                            batch=batch))

    def warm_plans(self, models: Sequence[str],
                   mechanisms: Optional[Sequence[str]] = None,
                   jobs: Optional[int] = None,
                   batches: Sequence[int] = (1,),
                   programs: bool = False) -> int:
        """Pre-build plans for every (model, SoC type, mechanism,
        batch).

        Serving then never partitions on the request path.  Already
        cached configurations are skipped.

        Args:
            models: models to warm.
            mechanisms: mechanisms to warm (default: everything each
                SoC supports).
            jobs: fan plan building across processes (None/1 = serial,
                in-process; <=0 = one per CPU).
            batches: batch sizes to warm; a batching scheduler with
                ``max_batch=B`` dispatches at sizes 1..B, so warm
                ``range(1, B + 1)``.
            programs: also compile (and, when the fleet has a tuner,
                autotune) one :class:`CompiledProgram` per unique
                (model, SoC type, mechanism, batch), cached next to
                its plan.  The work is keyed by SoC *type*, not
                device, so a hundred replicas of one SoC warm -- and
                tune -- each configuration exactly once, all through
                the fleet's shared :class:`~repro.tune.TuneCache`.

        Returns:
            How many plans (plus, with ``programs``, programs) were
            built and inserted by this call.
        """
        from ..harness.parallel import parallel_map

        work: List[Tuple[str, QuantizationPolicy, str, str, int]] = []
        for soc_name in sorted(self._contexts):
            context = self._contexts[soc_name]
            supported = context.mechanisms()
            chosen = (supported if mechanisms is None
                      else tuple(m for m in mechanisms
                                 if m in supported))
            for model in models:
                for mechanism in chosen:
                    for batch in batches:
                        key = PlanKey(
                            model=model, soc=soc_name,
                            mechanism=mechanism,
                            policy=context.policy_name(mechanism),
                            batch=batch)
                        if key not in self.plan_cache:
                            work.append((soc_name, self.policy, model,
                                         mechanism, batch))
        if jobs is None or jobs == 1:
            # Serial warm-up reuses the fleet's own contexts (and their
            # already fitted predictors).
            for soc_name, _, model, mechanism, batch in work:
                context = self._contexts[soc_name]
                key = PlanKey(model=model, soc=soc_name,
                              mechanism=mechanism,
                              policy=context.policy_name(mechanism),
                              batch=batch)
                self.plan_cache.put(
                    key, context.build_plan(self.graph(model), mechanism,
                                            batch=batch))
        else:
            for key, plan in parallel_map(_warm_plan_unit, work,
                                          jobs=jobs):
                self.plan_cache.put(key, plan)
        built = len(work)
        if programs:
            built += self._warm_programs(models, mechanisms, batches)
        return built

    def _warm_programs(self, models: Sequence[str],
                       mechanisms: Optional[Sequence[str]],
                       batches: Sequence[int]) -> int:
        """Compile one program per unique configuration (see
        :meth:`warm_plans`); returns how many were compiled."""
        # Imported lazily: repro.compile imports the analysis package,
        # which imports the runtime this module builds on.
        from ..compile import compile_program
        from ..nn.reference import calibrate_graph
        import numpy as np

        weighted: Dict[str, Graph] = {}
        calibrations: Dict[Tuple[str, str], "CalibrationTable"] = {}
        compiled = 0
        for soc_name in sorted(self._contexts):
            context = self._contexts[soc_name]
            supported = context.mechanisms()
            chosen = (supported if mechanisms is None
                      else tuple(m for m in mechanisms
                                 if m in supported))
            for model in models:
                for mechanism in chosen:
                    for batch in batches:
                        key = PlanKey(
                            model=model, soc=soc_name,
                            mechanism=mechanism,
                            policy=context.policy_name(mechanism),
                            batch=batch)
                        if self.plan_cache.get_program(
                                key, batch) is not None:
                            continue
                        graph = weighted.get(model)
                        if graph is None:
                            graph = build_model(model,
                                                with_weights=True)
                            weighted[model] = graph
                        plan = self.plan_cache.get_or_build(
                            key,
                            lambda: context.build_plan(graph, mechanism,
                                                       batch=batch))
                        calibration: "Optional[CalibrationTable]" = None
                        if plan.policy.is_quantized:
                            cal_key = (model, plan.policy.name)
                            calibration = calibrations.get(cal_key)
                            if calibration is None:
                                in_name = graph.input_layers()[0]
                                shape = (1,) + tuple(
                                    int(d) for d in
                                    graph.infer_shapes()[in_name][1:])
                                sample = np.random.default_rng(
                                    0).standard_normal(shape).astype(
                                        np.float32)
                                calibration = calibrate_graph(
                                    graph, [sample])
                                calibrations[cal_key] = calibration
                        program = compile_program(
                            graph, plan, calibration=calibration,
                            batch=batch, mechanism=mechanism,
                            tuner=self.tuner)
                        self.plan_cache.put_program(key, batch, program)
                        compiled += 1
        return compiled

    def resources_for(self, model: str, device: Device, mechanism: str,
                      batch: int = 1) -> Tuple[str, ...]:
        """The processors a configuration occupies (plan-derived,
        memoized per model/SoC type/mechanism/batch)."""
        key = (model, device.soc.name, mechanism, batch)
        cached = self._resources.get(key)
        if cached is None:
            plan = self.plan_for(model, device, mechanism, batch=batch)
            cached = plan_resources(plan, self.graph(model))
            self._resources[key] = cached
        return cached

    def estimate_service_s(self, model: str, device: Device,
                           mechanism: str, batch: int = 1) -> float:
        """Predicted service time of ``model`` via ``mechanism``.

        With ``batch > 1``, the predicted makespan of the whole batch
        as one inference (what a batching scheduler compares against
        its members' deadlines).  Memoized per (model, SoC type,
        mechanism, batch); the first call warms the plan cache for the
        configuration.
        """
        key = (model, device.soc.name, mechanism, batch)
        cached = self._estimates.get(key)
        if cached is None:
            context = self._contexts[device.soc.name]
            plan = self.plan_for(model, device, mechanism, batch=batch)
            cached = context.estimate_service_s(self.graph(model),
                                                mechanism, plan,
                                                batch=batch)
            self._estimates[key] = cached
        return cached

    def isolated_latency_s(self, model: str,
                           mechanism: str = "mulayer") -> float:
        """Measured unloaded latency, worst across the fleet's SoCs.

        The natural reference point for SLO sizing: an SLO of
        ``k * isolated_latency_s`` gives every device ``k`` times the
        no-contention service time.
        """
        worst = 0.0
        graph = self.graph(model)
        for soc_name, context in self._contexts.items():
            cache_key = (model + ":" + mechanism, soc_name)
            cached = self._isolated.get(cache_key)
            if cached is None:
                device = Device.make("probe:" + soc_name, context.soc)
                plan = self.plan_for(model, device, mechanism)
                cached = context.executor.run(
                    graph, plan, mechanism=mechanism).latency_s
                self._isolated[cache_key] = cached
            worst = max(worst, cached)
        return worst

    def capacity_rps(self, models: Sequence[str],
                     weights: Optional[Sequence[float]] = None) -> float:
        """Rough fleet capacity under all-μLayer execution.

        One over the (weighted) mean isolated μLayer latency, times the
        device count -- the saturation throughput if every request ran
        co-executed with zero scheduling slack.
        """
        if not models:
            raise ValueError("capacity needs at least one model")
        if weights is None:
            share = [1.0 / len(models)] * len(models)
        else:
            total = float(sum(weights))
            share = [w / total for w in weights]
        mean_latency = sum(
            s * self.isolated_latency_s(m)
            for m, s in zip(models, share))
        return len(self.devices) / mean_latency

    def _run_memoized(self, model: str, device: Device, mechanism: str,
                      batch: int) -> InferenceResult:
        """One executor run per configuration, replayed thereafter.

        The executor is deterministic, so replaying the cached
        :class:`InferenceResult` is observationally identical to
        re-executing -- same latency, energy, traffic, timeline -- at
        none of the cost.  ``memoize_results=False`` restores per-
        dispatch execution.
        """
        # Look the plan up unconditionally so the plan cache's
        # hit/miss counters read exactly as they would without result
        # memoization (they are part of the reported metrics).
        plan = self.plan_for(model, device, mechanism, batch=batch)
        key = (model, device.soc.name, mechanism, batch)
        cached = self._results.get(key)
        if cached is not None:
            return cached
        context = self._contexts[device.soc.name]
        kwargs = {"batch": batch} if batch > 1 else {}
        result = context.executor.run(
            self.graph(model), plan, mechanism=f"serve-{mechanism}",
            compiled=self.compiled, **kwargs)
        if self.memoize_results:
            self._results[key] = result
        return result

    def execute(self, request: Request, device: Device, mechanism: str,
                start_s: float) -> Completion:
        """Run one request on a device, advancing its clocks.

        The service time is the executor-reported latency of the cached
        plan; the mechanism's resources are occupied for exactly that
        span starting at ``start_s``.
        """
        result = self._run_memoized(request.model, device, mechanism,
                                    batch=1)
        finish = start_s + result.latency_s
        device.occupy(self.resources_for(request.model, device,
                                         mechanism),
                      start_s, finish)
        return Completion(request=request, device_id=device.device_id,
                          mechanism=mechanism, start_s=start_s,
                          finish_s=finish, result=result)

    def execute_batch(self, requests: Sequence[Request], device: Device,
                      mechanism: str,
                      start_s: float) -> List[Completion]:
        """Run same-model requests as one batched inference.

        The batch executes as a single batch-N plan (weight traffic
        amortized), occupies the plan's resources for the batched
        makespan, and every member request completes at the batch's
        finish time -- per-request latency is its queue wait plus the
        whole batched run, never a fraction of it.

        Raises:
            ValueError: for an empty batch or mixed models.
        """
        if not requests:
            raise ValueError("execute_batch needs at least one request")
        models = {request.model for request in requests}
        if len(models) > 1:
            raise ValueError(
                f"one batch must serve one model, got {sorted(models)}")
        if len(requests) == 1:
            return [self.execute(requests[0], device, mechanism,
                                 start_s)]
        (model,) = models
        batch = len(requests)
        result = self._run_memoized(model, device, mechanism,
                                    batch=batch)
        finish = start_s + result.latency_s
        device.occupy(self.resources_for(model, device, mechanism,
                                         batch=batch),
                      start_s, finish, count=batch)
        return [Completion(request=request, device_id=device.device_id,
                           mechanism=mechanism, start_s=start_s,
                           finish_s=finish, result=result,
                           batch_size=batch)
                for request in requests]


def default_slos(fleet: Fleet, models: Sequence[str],
                 slo_factor: float = 4.0) -> Mapping[str, float]:
    """Per-model SLOs: ``slo_factor`` times the worst isolated μLayer
    latency across the fleet's SoC types."""
    if slo_factor <= 0.0:
        raise ValueError("slo_factor must be positive")
    return {model: slo_factor * fleet.isolated_latency_s(model)
            for model in models}
