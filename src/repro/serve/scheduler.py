"""Serving schedulers: FIFO, least-loaded, and SLO-aware EDF.

A scheduler is consulted by the simulator at every event (arrival or
completion).  It inspects the pending queue and the fleet and returns
*one* action at a time -- start a request on a device via a mechanism,
or shed a request -- until it has nothing more to do at the current
simulated time.  Returning single actions keeps the protocol simple and
race-free: the fleet's clocks advance between calls, so the scheduler
always sees the true residual capacity.

Three policies are provided:

* :class:`FIFOScheduler` -- strict arrival order with head-of-line
  blocking; every request runs μLayer co-executed on the first fully
  idle device.  The baseline.
* :class:`LeastLoadedScheduler` -- FIFO order, but ties between idle
  devices break toward the least cumulative work, balancing mixed
  fleets.
* :class:`EDFScheduler` -- earliest-deadline-first over the pending
  queue, choosing *both* the device and the execution mechanism
  (μLayer co-execution vs. a single processor) by predicted
  completion time, using the runtime's fitted
  :class:`~repro.runtime.predictor.LatencyPredictor` as its service
  time oracle.  Admission control sheds a request as soon as no
  (device, mechanism) pair is predicted to meet its deadline --
  predicted queue delay included -- so a saturated fleet spends no
  cycles on requests that are already lost.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional, Sequence, Tuple, Union

from .fleet import Device, Fleet
from .workload import Request


@dataclasses.dataclass(frozen=True)
class Start:
    """Dispatch ``request`` on ``device_id`` via ``mechanism`` now."""

    request: Request
    device_id: str
    mechanism: str
    predicted_service_s: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class Shed:
    """Drop ``request`` (admission control)."""

    request: Request
    reason: str


Action = Union[Start, Shed]


class Scheduler(abc.ABC):
    """Policy interface consulted by the simulator."""

    name: str = "scheduler"

    @abc.abstractmethod
    def next_action(self, pending: Sequence[Request], fleet: Fleet,
                    now: float) -> Optional[Action]:
        """The next action at simulated time ``now``, or None.

        ``pending`` is in arrival order.  A returned
        :class:`Start` must be startable immediately (its resources
        idle at ``now``); the simulator executes it, advances the
        device clocks, and asks again.
        """


class FIFOScheduler(Scheduler):
    """Arrival order, first idle device, fixed mechanism.

    Head-of-line blocking included: while the oldest request cannot
    start, nothing behind it runs -- the classic baseline the SLO-aware
    policy is measured against.
    """

    name = "fifo"

    def __init__(self, mechanism: str = "mulayer") -> None:
        self.mechanism = mechanism

    def _pick_device(self, request: Request, fleet: Fleet,
                     now: float) -> Optional[Device]:
        for device in fleet.devices:
            resources = fleet.resources_for(request.model, device,
                                            self.mechanism)
            if device.idle_now(resources, now):
                return device
        return None

    def next_action(self, pending: Sequence[Request], fleet: Fleet,
                    now: float) -> Optional[Action]:
        if not pending:
            return None
        head = pending[0]
        device = self._pick_device(head, fleet, now)
        if device is None:
            return None
        return Start(request=head, device_id=device.device_id,
                     mechanism=self.mechanism)


class LeastLoadedScheduler(FIFOScheduler):
    """FIFO order, but idle-device ties break to the least-worked
    device -- keeps a mixed fleet's fast SoCs from idling."""

    name = "least-loaded"

    def _pick_device(self, request: Request, fleet: Fleet,
                     now: float) -> Optional[Device]:
        best: Optional[Device] = None
        best_load = float("inf")
        for device in fleet.devices:
            resources = fleet.resources_for(request.model, device,
                                            self.mechanism)
            if not device.idle_now(resources, now):
                continue
            load = device.total_busy_s()
            if load < best_load:
                best, best_load = device, load
        return best


class EDFScheduler(Scheduler):
    """Earliest-deadline-first with latency-predictor admission.

    For each pending request (in deadline order) every (device,
    mechanism) pair is scored by its predicted completion time:
    ``max(now, resources free) + predicted service``.  The request is

    * **shed** when no pair is predicted to make the deadline,
    * **started** on the best immediately startable pair that makes
      the deadline,
    * **left queued** when a pair could make the deadline but none of
      the feasible pairs is idle yet.

    Because single-processor mechanisms occupy only part of a device,
    EDF naturally co-schedules: while one request holds the GPU, a
    tight-deadline arrival can still start CPU-only on the same SoC.
    There is no head-of-line blocking -- later-deadline requests may
    start on resources the front of the queue cannot use yet.
    """

    name = "edf"

    def __init__(self, mechanisms: Optional[Sequence[str]] = None,
                 admission_control: bool = True) -> None:
        self.mechanisms = tuple(mechanisms) if mechanisms else None
        self.admission_control = admission_control

    def _mechanisms_for(self, fleet: Fleet,
                        device: Device) -> Tuple[str, ...]:
        available = fleet.mechanisms(device)
        if self.mechanisms is None:
            return available
        return tuple(m for m in self.mechanisms if m in available)

    def next_action(self, pending: Sequence[Request], fleet: Fleet,
                    now: float) -> Optional[Action]:
        ordered = sorted(pending,
                         key=lambda r: (r.deadline_s, r.request_id))
        for request in ordered:
            feasible_later = False
            best: Optional[Tuple[float, int, str, float]] = None
            for index, device in enumerate(fleet.devices):
                for mechanism in self._mechanisms_for(fleet, device):
                    service = fleet.estimate_service_s(
                        request.model, device, mechanism)
                    resources = fleet.resources_for(request.model,
                                                    device, mechanism)
                    start = device.earliest_start_s(resources, now)
                    finish = start + service
                    if finish > request.deadline_s + 1e-12:
                        continue
                    if not device.idle_now(resources, now):
                        feasible_later = True
                        continue
                    candidate = (finish, index, mechanism, service)
                    if best is None or candidate < best:
                        best = candidate
            if best is not None:
                _, index, mechanism, service = best
                return Start(request=request,
                             device_id=fleet.devices[index].device_id,
                             mechanism=mechanism,
                             predicted_service_s=service)
            if not feasible_later and self.admission_control:
                return Shed(request=request,
                            reason="predicted-deadline-miss")
            # Feasible on a busy device (or shedding disabled): wait.
        return None


def make_scheduler(name: str) -> Scheduler:
    """Scheduler factory used by the CLI and the harness.

    Raises:
        ValueError: for unknown scheduler names.
    """
    if name == "fifo":
        return FIFOScheduler()
    if name == "least-loaded":
        return LeastLoadedScheduler()
    if name == "edf":
        return EDFScheduler()
    raise ValueError(f"unknown scheduler {name!r}; "
                     "choose fifo, least-loaded, or edf")
