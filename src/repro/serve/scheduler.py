"""Serving schedulers: FIFO, least-loaded, SLO-aware EDF, and dynamic
batching.

A scheduler is consulted by the simulator at every event (arrival,
completion, or timer wakeup).  It inspects the pending queue and the
fleet and returns *one* action at a time -- start a request (or a batch
of same-model requests) on a device via a mechanism, or shed a request
-- until it has nothing more to do at the current simulated time.
Returning single actions keeps the protocol simple and race-free: the
fleet's clocks advance between calls, so the scheduler always sees the
true residual capacity.

Four policies are provided:

* :class:`FIFOScheduler` -- strict arrival order with head-of-line
  blocking; every request runs μLayer co-executed on the first fully
  idle device.  The baseline.
* :class:`LeastLoadedScheduler` -- FIFO order, but ties between idle
  devices break toward the least cumulative work, balancing mixed
  fleets.
* :class:`EDFScheduler` -- earliest-deadline-first over the pending
  queue, choosing *both* the device and the execution mechanism
  (μLayer co-execution vs. a single processor) by predicted
  completion time, using the runtime's fitted
  :class:`~repro.runtime.predictor.LatencyPredictor` as its service
  time oracle.  Admission control sheds a request as soon as no
  (device, mechanism) pair is predicted to meet its deadline --
  predicted queue delay included -- so a saturated fleet spends no
  cycles on requests that are already lost.  With ``max_batch > 1``
  it additionally coalesces same-model requests into one dispatch,
  but only when the predictor says the *batched* completion time
  still meets every member's deadline.
* :class:`DynamicBatchScheduler` -- coalesces queued same-model
  requests into batched dispatches of up to ``max_batch``, flushing a
  partial batch once its oldest request has waited
  ``batch_timeout_s``.  The throughput-oriented policy: batched GEMMs
  amortize weight traffic, so a loaded fleet completes more requests
  per second at the price of per-request latency (queue wait plus the
  whole batched run).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .fleet import Device, Fleet
from .workload import Request


@dataclasses.dataclass(frozen=True)
class Start:
    """Dispatch ``request`` on ``device_id`` via ``mechanism`` now."""

    request: Request
    device_id: str
    mechanism: str
    predicted_service_s: Optional[float] = None


@dataclasses.dataclass(frozen=True)
class StartBatch:
    """Dispatch same-model ``requests`` as one batched inference on
    ``device_id`` via ``mechanism`` now."""

    requests: Tuple[Request, ...]
    device_id: str
    mechanism: str
    predicted_service_s: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValueError("StartBatch needs at least one request")
        models = {request.model for request in self.requests}
        if len(models) > 1:
            raise ValueError(
                f"one batch must serve one model, got {sorted(models)}")


@dataclasses.dataclass(frozen=True)
class Shed:
    """Drop ``request`` (admission control)."""

    request: Request
    reason: str


Action = Union[Start, StartBatch, Shed]


class Scheduler(abc.ABC):
    """Policy interface consulted by the simulator."""

    name: str = "scheduler"

    @abc.abstractmethod
    def next_action(self, pending: Sequence[Request], fleet: Fleet,
                    now: float) -> Optional[Action]:
        """The next action at simulated time ``now``, or None.

        ``pending`` is in arrival order.  A returned
        :class:`Start`/:class:`StartBatch` must be startable
        immediately (its resources idle at ``now``); the simulator
        executes it, advances the device clocks, and asks again.
        """

    def next_wakeup_s(self, pending: Sequence[Request], fleet: Fleet,
                      now: float) -> Optional[float]:
        """Earliest future time this scheduler wants to be polled even
        without a new arrival or completion (batch-timeout flushes).
        None -- the default -- means events alone suffice."""
        return None


class FIFOScheduler(Scheduler):
    """Arrival order, first idle device, fixed mechanism.

    Head-of-line blocking included: while the oldest request cannot
    start, nothing behind it runs -- the classic baseline the SLO-aware
    policy is measured against.
    """

    name = "fifo"

    def __init__(self, mechanism: str = "mulayer") -> None:
        self.mechanism = mechanism

    def _pick_device(self, request: Request, fleet: Fleet,
                     now: float) -> Optional[Device]:
        for device in fleet.devices:
            resources = fleet.resources_for(request.model, device,
                                            self.mechanism)
            if device.idle_now(resources, now):
                return device
        return None

    def next_action(self, pending: Sequence[Request], fleet: Fleet,
                    now: float) -> Optional[Action]:
        if not pending:
            return None
        # Priority classes are strict: the head of the queue is the
        # oldest request of the most urgent class present.  With one
        # class this is plain arrival order.
        head = min(pending, key=lambda r: (r.priority, r.request_id))
        device = self._pick_device(head, fleet, now)
        if device is None:
            return None
        return Start(request=head, device_id=device.device_id,
                     mechanism=self.mechanism)


class LeastLoadedScheduler(FIFOScheduler):
    """FIFO order, but idle-device ties break to the least-worked
    device -- keeps a mixed fleet's fast SoCs from idling."""

    name = "least-loaded"

    def _pick_device(self, request: Request, fleet: Fleet,
                     now: float) -> Optional[Device]:
        best: Optional[Device] = None
        best_load = float("inf")
        for device in fleet.devices:
            resources = fleet.resources_for(request.model, device,
                                            self.mechanism)
            if not device.idle_now(resources, now):
                continue
            load = device.total_busy_s()
            if load < best_load:
                best, best_load = device, load
        return best


class EDFScheduler(Scheduler):
    """Earliest-deadline-first with latency-predictor admission.

    For each pending request (in deadline order) every (device,
    mechanism) pair is scored by its predicted completion time:
    ``max(now, resources free) + predicted service``.  The request is

    * **shed** when no pair is predicted to make the deadline,
    * **started** on the best immediately startable pair that makes
      the deadline,
    * **left queued** when a pair could make the deadline but none of
      the feasible pairs is idle yet.

    Because single-processor mechanisms occupy only part of a device,
    EDF naturally co-schedules: while one request holds the GPU, a
    tight-deadline arrival can still start CPU-only on the same SoC.
    There is no head-of-line blocking -- later-deadline requests may
    start on resources the front of the queue cannot use yet.
    """

    name = "edf"

    def __init__(self, mechanisms: Optional[Sequence[str]] = None,
                 admission_control: bool = True,
                 max_batch: int = 1) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.mechanisms = tuple(mechanisms) if mechanisms else None
        self.admission_control = admission_control
        self.max_batch = max_batch

    def _mechanisms_for(self, fleet: Fleet,
                        device: Device) -> Tuple[str, ...]:
        available = fleet.mechanisms(device)
        if self.mechanisms is None:
            return available
        return tuple(m for m in self.mechanisms if m in available)

    def next_action(self, pending: Sequence[Request], fleet: Fleet,
                    now: float) -> Optional[Action]:
        # EDF within each priority class; classes are strict (a class-1
        # request never jumps ahead of any class-0 request, however
        # tight its deadline).
        ordered = sorted(pending,
                         key=lambda r: (r.priority, r.deadline_s,
                                        r.request_id))
        for request in ordered:
            feasible_later = False
            best: Optional[Tuple[float, int, str, float]] = None
            for index, device in enumerate(fleet.devices):
                for mechanism in self._mechanisms_for(fleet, device):
                    service = fleet.estimate_service_s(
                        request.model, device, mechanism)
                    resources = fleet.resources_for(request.model,
                                                    device, mechanism)
                    start = device.earliest_start_s(resources, now)
                    finish = start + service
                    if finish > request.deadline_s + 1e-12:
                        continue
                    if not device.idle_now(resources, now):
                        feasible_later = True
                        continue
                    candidate = (finish, index, mechanism, service)
                    if best is None or candidate < best:
                        best = candidate
            if best is not None:
                _, index, mechanism, service = best
                device = fleet.devices[index]
                if self.max_batch > 1:
                    batched = self._widen_batch(request, device,
                                                mechanism, ordered,
                                                fleet, now)
                    if batched is not None:
                        return batched
                return Start(request=request,
                             device_id=device.device_id,
                             mechanism=mechanism,
                             predicted_service_s=service)
            if not feasible_later and self.admission_control:
                return Shed(request=request,
                            reason="predicted-deadline-miss")
            # Feasible on a busy device (or shedding disabled): wait.
        return None

    def _widen_batch(self, request: Request, device: Device,
                     mechanism: str, ordered: Sequence[Request],
                     fleet: Fleet, now: float) -> Optional[StartBatch]:
        """Greedily grow a same-model batch around ``request``.

        Candidates join in deadline order; each is admitted only while
        the predictor says the *batched* run still finishes before
        every member's deadline -- batching must never turn a met SLO
        into a miss the scheduler could foresee.  Returns None when no
        candidate survives (plain Start is cheaper than a batch of 1).
        """
        members = [request]
        deadline = request.deadline_s
        service = None
        for candidate in ordered:
            if candidate is request or len(members) >= self.max_batch:
                continue
            if candidate.model != request.model:
                continue
            trial_deadline = min(deadline, candidate.deadline_s)
            trial_service = fleet.estimate_service_s(
                request.model, device, mechanism,
                batch=len(members) + 1)
            if now + trial_service > trial_deadline + 1e-12:
                continue
            members.append(candidate)
            deadline = trial_deadline
            service = trial_service
        if len(members) == 1:
            return None
        return StartBatch(requests=tuple(members),
                          device_id=device.device_id,
                          mechanism=mechanism,
                          predicted_service_s=service)


class DynamicBatchScheduler(Scheduler):
    """Dynamic request batching: coalesce, then dispatch together.

    Pending requests are grouped by model (the fleet serves one
    quantization policy, so same model means same plan configuration).
    A group dispatches as one batched inference when it has
    ``max_batch`` requests waiting, or -- partial batch -- once its
    oldest request has waited ``batch_timeout_s``; the simulator's
    timer wakeups (:meth:`next_wakeup_s`) guarantee the flush happens
    at exactly that instant even with no arrival or completion nearby.

    Groups are scanned in arrival order of their oldest request, so a
    stalling group does not block a ready one behind it, but no group
    starves either.
    """

    name = "batch"

    def __init__(self, mechanism: str = "mulayer", max_batch: int = 4,
                 batch_timeout_s: float = 0.05) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if batch_timeout_s < 0.0:
            raise ValueError("batch_timeout_s must be >= 0")
        self.mechanism = mechanism
        self.max_batch = max_batch
        self.batch_timeout_s = batch_timeout_s

    def _groups(self, pending: Sequence[Request]
                ) -> "List[List[Request]]":
        """Same-model groups, ordered by (priority, arrival) of their
        most urgent member, members most-urgent-first.  With one
        priority class this is arrival order of the oldest member."""
        ordered = sorted(pending,
                         key=lambda r: (r.priority, r.request_id))
        by_model: Dict[str, List[Request]] = {}
        for request in ordered:
            by_model.setdefault(request.model, []).append(request)
        return list(by_model.values())

    def _ready(self, group: Sequence[Request], now: float) -> bool:
        """A group dispatches when full or past its timeout window
        (measured from its *oldest* member, which under priority
        ordering is not necessarily the first)."""
        if len(group) >= self.max_batch:
            return True
        oldest = min(request.arrival_s for request in group)
        return now - oldest >= self.batch_timeout_s - 1e-12

    def next_action(self, pending: Sequence[Request], fleet: Fleet,
                    now: float) -> Optional[Action]:
        for group in self._groups(pending):
            if not self._ready(group, now):
                continue
            members = group[:self.max_batch]
            batch = len(members)
            for device in fleet.devices:
                resources = fleet.resources_for(
                    members[0].model, device, self.mechanism,
                    batch=batch)
                if not device.idle_now(resources, now):
                    continue
                if batch == 1:
                    return Start(request=members[0],
                                 device_id=device.device_id,
                                 mechanism=self.mechanism)
                return StartBatch(requests=tuple(members),
                                  device_id=device.device_id,
                                  mechanism=self.mechanism)
            # Ready but no idle device: a completion will re-poll.
        return None

    def next_wakeup_s(self, pending: Sequence[Request], fleet: Fleet,
                      now: float) -> Optional[float]:
        """The earliest pending timeout flush among partial groups."""
        deadlines = [min(r.arrival_s for r in group)
                     + self.batch_timeout_s
                     for group in self._groups(pending)
                     if len(group) < self.max_batch]
        if not deadlines:
            return None
        return min(deadlines)


def make_scheduler(name: str, max_batch: Optional[int] = None,
                   batch_timeout_s: Optional[float] = None) -> Scheduler:
    """Scheduler factory used by the CLI and the harness.

    ``max_batch``/``batch_timeout_s`` configure the batching policies
    ("batch" always batches; "edf" batches when ``max_batch > 1``) and
    are ignored by the non-batching ones.

    Raises:
        ValueError: for unknown scheduler names.
    """
    if name == "fifo":
        return FIFOScheduler()
    if name == "least-loaded":
        return LeastLoadedScheduler()
    if name == "edf":
        return EDFScheduler(max_batch=max_batch or 1)
    if name == "batch":
        kwargs: Dict[str, object] = {}
        if max_batch is not None:
            kwargs["max_batch"] = max_batch
        if batch_timeout_s is not None:
            kwargs["batch_timeout_s"] = batch_timeout_s
        return DynamicBatchScheduler(**kwargs)   # type: ignore[arg-type]
    raise ValueError(f"unknown scheduler {name!r}; "
                     "choose fifo, least-loaded, edf, or batch")
