"""Declarative serving configuration.

Everything ``repro serve`` needs to set up a simulation, gathered into
one frozen value so configurations can be linted statically
(:mod:`repro.analysis.schedulability`) before the simulator ever runs,
serialized alongside results, and constructed in tests without touching
the CLI.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Tuple


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """One serving scenario, fully specified.

    Attributes:
        models: models the workload draws from.
        soc_names: SoC types the fleet cycles through.
        num_devices: fleet size.
        rate_rps: offered arrival rate (requests per second).
        slos: per-model SLO deadlines in seconds.
        scheduler: scheduler policy name (``fifo`` / ``least_loaded``
            / ``edf`` / ``dynamic_batch``).
        max_batch: largest batched dispatch a batching scheduler may
            form (1 = no batching).
        batch_timeout_s: how long a batching scheduler holds the first
            request of a forming batch before dispatching it anyway.
    """

    models: Tuple[str, ...]
    soc_names: Tuple[str, ...]
    num_devices: int
    rate_rps: float
    slos: Mapping[str, float]
    scheduler: str = "edf"
    max_batch: int = 1
    batch_timeout_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("ServeConfig needs at least one model")
        if not self.soc_names:
            raise ValueError("ServeConfig needs at least one SoC type")
        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.rate_rps <= 0.0:
            raise ValueError("rate_rps must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_timeout_s < 0.0:
            raise ValueError("batch_timeout_s must be >= 0")
        missing = [m for m in self.models if m not in self.slos]
        if missing:
            raise ValueError(f"models without an SLO: {missing}")

    def slo_of(self, model: str) -> float:
        """The SLO deadline of one model.

        Raises:
            KeyError: when the model has no SLO entry.
        """
        return self.slos[model]

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (stored next to serving results)."""
        return {
            "models": list(self.models),
            "soc_names": list(self.soc_names),
            "num_devices": self.num_devices,
            "rate_rps": self.rate_rps,
            "slos": dict(self.slos),
            "scheduler": self.scheduler,
            "max_batch": self.max_batch,
            "batch_timeout_s": self.batch_timeout_s,
        }
