"""Serving metrics: throughput, tail latency, SLO attainment.

Aggregates a :class:`~repro.serve.simulator.ServingResult` into the
numbers a serving operator watches: offered vs. completed counts,
p50/p95/p99 end-to-end latency, queue-wait percentiles (where dynamic
batching's latency cost surfaces), batch-size statistics of the
dispatches, SLO attainment (shed and unserved requests count against
it -- a dropped request is a broken promise), per-device per-processor
utilization, the execution-mechanism mix, and the plan cache's full
counters (entries, hits, misses, hit rate, evictions).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Sequence

from .simulator import ServingResult


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile by linear interpolation.

    Deterministic, dependency-light equivalent of numpy's default
    method; ``q`` in [0, 100].

    Small-sample behaviour: when the sample is smaller than the
    percentile's granularity -- fewer than ``ceil(100 / (100 - q))``
    values, e.g. a p99 over fewer than 100 samples -- the tail
    percentile is simply the worst observation, and interpolating
    between the last two order statistics would *understate* it.  In
    that regime this function returns the maximum observed value
    instead of interpolating past the last sample.

    Raises:
        ValueError: for an empty sequence or ``q`` outside [0, 100].
    """
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} outside [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    if q > 0.0:
        granularity = (math.ceil(100.0 / (100.0 - q))
                       if q < 100.0 else len(ordered))
        if len(ordered) < granularity:
            return ordered[-1]
    position = (len(ordered) - 1) * q / 100.0
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclasses.dataclass
class ServingMetrics:
    """One simulation summarized.

    Attributes:
        scheduler: policy name.
        num_offered / num_completed / num_shed / num_unserved: request
            accounting (offered = completed + shed + unserved).
        makespan_s: span of the simulation.
        throughput_rps: completed requests per second of makespan.
        latency percentiles/mean: end-to-end (queueing included)
            latency of completed requests, milliseconds.
        queue wait percentiles/mean: arrival-to-dispatch wait of
            completed requests, milliseconds -- the component of
            latency a batching scheduler trades for throughput.
        num_batches: batched-or-not dispatches issued (a batch of 4
            counts once; equals num_completed without batching).
        batch_size_mean / batch_size_max: dispatch-level batch-size
            statistics.
        slo_attainment: fraction of *offered* requests that finished
            within their SLO.
        slo_violations: completed requests that finished late.
        mechanism_counts: completions per execution mechanism.
        device_utilization: per device, per processor busy fraction.
        plan_cache: the shared plan cache's counters (entries, hits,
            misses, hit_rate, evictions).
    """

    scheduler: str
    num_offered: int
    num_completed: int
    num_shed: int
    num_unserved: int
    makespan_s: float
    throughput_rps: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    queue_wait_p50_ms: float
    queue_wait_p99_ms: float
    queue_wait_mean_ms: float
    num_batches: int
    batch_size_mean: float
    batch_size_max: int
    slo_attainment: float
    slo_violations: int
    mechanism_counts: Dict[str, int]
    device_utilization: Dict[str, Dict[str, float]]
    plan_cache: Dict[str, float]

    @classmethod
    def from_result(cls, result: ServingResult) -> "ServingMetrics":
        """Aggregate one finished simulation."""
        completions = result.completions
        sojourns_ms = [c.sojourn_s * 1e3 for c in completions]
        waits_ms = [c.queue_wait_s * 1e3 for c in completions]
        met = sum(1 for c in completions if c.met_slo)
        offered = result.num_offered
        makespan = result.makespan_s
        mechanism_counts: Dict[str, int] = {}
        for completion in completions:
            mechanism_counts[completion.mechanism] = (
                mechanism_counts.get(completion.mechanism, 0) + 1)
        if sojourns_ms:
            p50 = percentile(sojourns_ms, 50.0)
            p95 = percentile(sojourns_ms, 95.0)
            p99 = percentile(sojourns_ms, 99.0)
            mean = sum(sojourns_ms) / len(sojourns_ms)
            wait_p50 = percentile(waits_ms, 50.0)
            wait_p99 = percentile(waits_ms, 99.0)
            wait_mean = sum(waits_ms) / len(waits_ms)
        else:
            p50 = p95 = p99 = mean = 0.0
            wait_p50 = wait_p99 = wait_mean = 0.0
        # One batched dispatch produced one Completion per member, all
        # sharing (device, mechanism, start, finish); group to count
        # dispatches rather than requests.
        dispatches: Dict[object, int] = {}
        for completion in completions:
            dispatch = (completion.device_id, completion.mechanism,
                        completion.start_s, completion.finish_s)
            dispatches[dispatch] = completion.batch_size
        num_batches = len(dispatches)
        batch_sizes = list(dispatches.values())
        return cls(
            scheduler=result.scheduler,
            num_offered=offered,
            num_completed=len(completions),
            num_shed=len(result.sheds),
            num_unserved=len(result.unserved),
            makespan_s=makespan,
            throughput_rps=(len(completions) / makespan
                            if makespan > 0.0 else 0.0),
            latency_p50_ms=p50,
            latency_p95_ms=p95,
            latency_p99_ms=p99,
            latency_mean_ms=mean,
            queue_wait_p50_ms=wait_p50,
            queue_wait_p99_ms=wait_p99,
            queue_wait_mean_ms=wait_mean,
            num_batches=num_batches,
            batch_size_mean=(sum(batch_sizes) / len(batch_sizes)
                             if batch_sizes else 0.0),
            batch_size_max=max(batch_sizes, default=0),
            slo_attainment=met / offered if offered else 1.0,
            slo_violations=len(completions) - met,
            mechanism_counts=mechanism_counts,
            device_utilization={
                device.device_id: device.utilization(makespan)
                for device in result.fleet.devices},
            plan_cache=result.fleet.plan_cache.stats(),
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation."""
        return {
            "scheduler": self.scheduler,
            "num_offered": self.num_offered,
            "num_completed": self.num_completed,
            "num_shed": self.num_shed,
            "num_unserved": self.num_unserved,
            "makespan_s": self.makespan_s,
            "throughput_rps": self.throughput_rps,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "latency_mean_ms": self.latency_mean_ms,
            "queue_wait_p50_ms": self.queue_wait_p50_ms,
            "queue_wait_p99_ms": self.queue_wait_p99_ms,
            "queue_wait_mean_ms": self.queue_wait_mean_ms,
            "num_batches": self.num_batches,
            "batch_size_mean": self.batch_size_mean,
            "batch_size_max": self.batch_size_max,
            "slo_attainment": self.slo_attainment,
            "slo_violations": self.slo_violations,
            "mechanism_counts": dict(self.mechanism_counts),
            "device_utilization": {
                device: dict(resources)
                for device, resources in
                self.device_utilization.items()},
            "plan_cache": dict(self.plan_cache),
        }

    def render(self) -> str:
        """Printable summary tables."""
        from ..harness.report import format_table
        rows = [
            ["offered", float(self.num_offered)],
            ["completed", float(self.num_completed)],
            ["shed", float(self.num_shed)],
            ["unserved", float(self.num_unserved)],
            ["makespan_s", self.makespan_s],
            ["throughput_rps", self.throughput_rps],
            ["latency_p50_ms", self.latency_p50_ms],
            ["latency_p95_ms", self.latency_p95_ms],
            ["latency_p99_ms", self.latency_p99_ms],
            ["latency_mean_ms", self.latency_mean_ms],
            ["queue_wait_p50_ms", self.queue_wait_p50_ms],
            ["queue_wait_p99_ms", self.queue_wait_p99_ms],
            ["num_batches", float(self.num_batches)],
            ["batch_size_mean", self.batch_size_mean],
            ["batch_size_max", float(self.batch_size_max)],
            ["slo_attainment", self.slo_attainment],
            ["slo_violations", float(self.slo_violations)],
            ["plan_cache_entries", self.plan_cache["entries"]],
            ["plan_cache_hits", self.plan_cache["hits"]],
            ["plan_cache_misses", self.plan_cache["misses"]],
            ["plan_cache_hit_rate", self.plan_cache["hit_rate"]],
            ["plan_cache_evictions", self.plan_cache["evictions"]],
        ]
        text = format_table(
            ["metric", "value"], rows,
            title=f"serving summary ({self.scheduler} scheduler)")
        mechanism_rows: List[List[object]] = [
            [mechanism, float(count)]
            for mechanism, count in sorted(self.mechanism_counts.items())]
        if mechanism_rows:
            text += "\n\n" + format_table(["mechanism", "requests"],
                                          mechanism_rows,
                                          title="execution mechanisms")
        utilization_rows: List[List[object]] = []
        for device_id, resources in self.device_utilization.items():
            for resource, value in resources.items():
                utilization_rows.append([device_id, resource, value])
        if utilization_rows:
            text += "\n\n" + format_table(
                ["device", "resource", "utilization"], utilization_rows,
                title="device utilization")
        return text
