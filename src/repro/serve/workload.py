"""Request arrival workloads for the serving simulator.

A workload generator turns a seed into a deterministic trace of
:class:`Request` objects -- each with an arrival time, a model to run,
and a latency SLO.  Two arrival processes are provided:

* :class:`PoissonWorkload` -- memoryless arrivals at a constant rate,
  the standard open-loop serving assumption;
* :class:`BurstyWorkload` -- a two-state Markov-modulated Poisson
  process (MMPP) alternating between a quiet base state and a burst
  state, producing the overdispersed arrivals real request streams
  show.

All randomness flows through one ``numpy`` generator seeded in
``generate``, so the same seed always yields the same trace and the
simulator stays reproducible end-to-end.  No wall-clock time is ever
consulted.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

#: Per-model SLOs, or one budget applied to every model.
SLOSpec = Union[float, Mapping[str, float]]


@dataclasses.dataclass(frozen=True)
class Request:
    """One inference request of the serving workload.

    Attributes:
        request_id: unique, dense id in arrival order.
        model: name of the model to run (a zoo model name).
        arrival_s: simulated arrival time.
        slo_s: latency budget; the request must finish by
            ``arrival_s + slo_s`` to meet its SLO.
    """

    request_id: int
    model: str
    arrival_s: float
    slo_s: float

    def __post_init__(self) -> None:
        if self.slo_s <= 0.0:
            raise ValueError(
                f"request {self.request_id}: SLO must be positive, "
                f"got {self.slo_s}")

    @property
    def deadline_s(self) -> float:
        """Absolute completion deadline."""
        return self.arrival_s + self.slo_s


class WorkloadGenerator(abc.ABC):
    """Base class: seeded request-trace generation over a model mix.

    Args:
        models: model names requests are drawn from.
        slo_s: per-model SLO mapping, or one budget for all models.
        seed: generator seed; same seed, same trace.
        model_weights: relative request frequency per model (uniform
            when omitted).
    """

    def __init__(self, models: Sequence[str], slo_s: SLOSpec,
                 seed: int = 0,
                 model_weights: Optional[Sequence[float]] = None) -> None:
        if not models:
            raise ValueError("workload needs at least one model")
        self.models = list(models)
        self.seed = seed
        self._slo = slo_s
        if model_weights is None:
            weights = np.full(len(self.models), 1.0 / len(self.models))
        else:
            if len(model_weights) != len(self.models):
                raise ValueError(
                    f"{len(model_weights)} weights for "
                    f"{len(self.models)} models")
            weights = np.asarray(model_weights, dtype=float)
            if np.any(weights < 0.0) or weights.sum() <= 0.0:
                raise ValueError("model weights must be non-negative "
                                 "and sum to a positive value")
            weights = weights / weights.sum()
        self._weights = weights

    def slo_of(self, model: str) -> float:
        """The latency budget assigned to ``model``."""
        if isinstance(self._slo, Mapping):
            try:
                return float(self._slo[model])
            except KeyError:
                raise KeyError(
                    f"no SLO configured for model {model!r}") from None
        return float(self._slo)

    # -- the arrival process, supplied by subclasses ------------------------

    @abc.abstractmethod
    def _initial_state(self) -> object:
        """Opaque initial state of the arrival process."""

    @abc.abstractmethod
    def _next_gap(self, rng: np.random.Generator,
                  state: object) -> Tuple[float, object]:
        """(inter-arrival gap, next state) of the arrival process."""

    # -- trace generation ----------------------------------------------------

    def generate(self, num_requests: int) -> List[Request]:
        """A deterministic trace of ``num_requests`` requests."""
        if num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        rng = np.random.default_rng(self.seed)
        state = self._initial_state()
        now = 0.0
        requests: List[Request] = []
        for request_id in range(num_requests):
            gap, state = self._next_gap(rng, state)
            now += gap
            index = int(rng.choice(len(self.models), p=self._weights))
            model = self.models[index]
            requests.append(Request(request_id=request_id, model=model,
                                    arrival_s=now,
                                    slo_s=self.slo_of(model)))
        return requests


class PoissonWorkload(WorkloadGenerator):
    """Open-loop Poisson arrivals at a constant offered rate.

    Args:
        rate_rps: mean arrival rate in requests per second.
    """

    def __init__(self, rate_rps: float, models: Sequence[str],
                 slo_s: SLOSpec, seed: int = 0,
                 model_weights: Optional[Sequence[float]] = None) -> None:
        if rate_rps <= 0.0:
            raise ValueError("rate_rps must be positive")
        super().__init__(models, slo_s, seed=seed,
                         model_weights=model_weights)
        self.rate_rps = rate_rps

    def _initial_state(self) -> object:
        return None

    def _next_gap(self, rng: np.random.Generator,
                  state: object) -> Tuple[float, object]:
        return float(rng.exponential(1.0 / self.rate_rps)), None


class BurstyWorkload(WorkloadGenerator):
    """Two-state MMPP arrivals: quiet base traffic with bursts.

    The process dwells in the base state (rate ``base_rate_rps``) for
    an exponentially distributed time of mean ``mean_base_s``, then
    switches to the burst state (rate ``burst_rate_rps``) for a mean of
    ``mean_burst_s``, and back.  Inter-arrival gaps are generated by
    racing the next-arrival exponential against the next state switch,
    which is the exact MMPP construction (competing exponentials), not
    a discretized approximation.
    """

    def __init__(self, base_rate_rps: float, burst_rate_rps: float,
                 mean_base_s: float, mean_burst_s: float,
                 models: Sequence[str], slo_s: SLOSpec, seed: int = 0,
                 model_weights: Optional[Sequence[float]] = None) -> None:
        for label, value in (("base_rate_rps", base_rate_rps),
                             ("burst_rate_rps", burst_rate_rps),
                             ("mean_base_s", mean_base_s),
                             ("mean_burst_s", mean_burst_s)):
            if value <= 0.0:
                raise ValueError(f"{label} must be positive")
        super().__init__(models, slo_s, seed=seed,
                         model_weights=model_weights)
        self.base_rate_rps = base_rate_rps
        self.burst_rate_rps = burst_rate_rps
        self.mean_base_s = mean_base_s
        self.mean_burst_s = mean_burst_s

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate of the MMPP."""
        dwell = self.mean_base_s + self.mean_burst_s
        return (self.base_rate_rps * self.mean_base_s
                + self.burst_rate_rps * self.mean_burst_s) / dwell

    def _initial_state(self) -> object:
        return "base"

    def _next_gap(self, rng: np.random.Generator,
                  state: object) -> Tuple[float, object]:
        gap = 0.0
        while True:
            if state == "base":
                rate, dwell = self.base_rate_rps, self.mean_base_s
            else:
                rate, dwell = self.burst_rate_rps, self.mean_burst_s
            arrival = float(rng.exponential(1.0 / rate))
            switch = float(rng.exponential(dwell))
            if arrival <= switch:
                return gap + arrival, state
            gap += switch
            state = "burst" if state == "base" else "base"


def bursty_for_rate(rate_rps: float, models: Sequence[str],
                    slo_s: SLOSpec, seed: int = 0,
                    burstiness: float = 4.0,
                    model_weights: Optional[Sequence[float]] = None
                    ) -> BurstyWorkload:
    """A bursty workload whose long-run rate matches ``rate_rps``.

    The burst state runs ``burstiness`` times hotter than the base
    state; dwell times are chosen so the time-average rate equals the
    requested one and each state typically spans tens of requests.
    """
    if burstiness <= 1.0:
        raise ValueError("burstiness must exceed 1.0")
    # Three quarters of the *time* in the base state, one quarter
    # bursting: base * 0.75 + burst * 0.25 == rate with burst == b *
    # base, so the dwell times must keep a 3:1 ratio.
    base = rate_rps / (0.75 + 0.25 * burstiness)
    burst = base * burstiness
    return BurstyWorkload(
        base_rate_rps=base, burst_rate_rps=burst,
        mean_base_s=30.0 / base, mean_burst_s=10.0 / base,
        models=models, slo_s=slo_s, seed=seed,
        model_weights=model_weights)
