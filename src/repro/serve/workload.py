"""Request arrival workloads for the serving simulator.

A workload generator turns a seed into a deterministic trace of
:class:`Request` objects -- each with an arrival time, a model to run,
a latency SLO, and a tenant/priority class.  Three arrival processes
are provided:

* :class:`PoissonWorkload` -- memoryless arrivals at a constant rate,
  the standard open-loop serving assumption;
* :class:`BurstyWorkload` -- a two-state Markov-modulated Poisson
  process (MMPP) alternating between a quiet base state and a burst
  state, producing the overdispersed arrivals real request streams
  show;
* :class:`TraceWorkload` -- trace-driven arrivals from a small JSON
  schema of piecewise-constant rate segments repeating with a period
  (diurnal curves, flash crowds, shifting model mixes), generated as
  an inhomogeneous Poisson process by thinning.
  :func:`diurnal_trace` and :func:`flash_crowd_trace` build the two
  canonical shapes without hand-writing segments.

All rate and dwell parameters are validated eagerly (positive *and*
finite) so a NaN or zero rate raises a clear :class:`ValueError` at
construction instead of producing empty or NaN arrival streams deep in
the simulator.  All randomness flows through one ``numpy`` generator
seeded in ``generate``, so the same seed always yields the same trace
and the simulator stays reproducible end-to-end.  No wall-clock time is
ever consulted.
"""

from __future__ import annotations

import abc
import dataclasses
import json
import math
from typing import (Dict, List, Mapping, Optional, Sequence, Tuple,
                    Union)

import numpy as np

#: Per-model SLOs, or one budget applied to every model.
SLOSpec = Union[float, Mapping[str, float]]


def _require_positive_finite(label: str, value: float) -> float:
    """Validate a rate/dwell parameter; NaN and inf are as fatal as
    zero -- both silently corrupt the arrival stream otherwise."""
    value = float(value)
    if not math.isfinite(value) or value <= 0.0:
        raise ValueError(f"{label} must be positive and finite, "
                         f"got {value!r}")
    return value


@dataclasses.dataclass(frozen=True)
class Request:
    """One inference request of the serving workload.

    Attributes:
        request_id: unique, dense id in arrival order.
        model: name of the model to run (a zoo model name).
        arrival_s: simulated arrival time.
        slo_s: latency budget; the request must finish by
            ``arrival_s + slo_s`` to meet its SLO.
        tenant: name of the tenant that issued the request.
        priority: priority class; **lower is more urgent** (class 0 is
            the premium tier).  Routers and schedulers order work by
            priority before anything else.
    """

    request_id: int
    model: str
    arrival_s: float
    slo_s: float
    tenant: str = "default"
    priority: int = 0

    def __post_init__(self) -> None:
        if self.slo_s <= 0.0:
            raise ValueError(
                f"request {self.request_id}: SLO must be positive, "
                f"got {self.slo_s}")
        if self.priority < 0:
            raise ValueError(
                f"request {self.request_id}: priority must be >= 0, "
                f"got {self.priority}")

    @property
    def deadline_s(self) -> float:
        """Absolute completion deadline."""
        return self.arrival_s + self.slo_s


class WorkloadGenerator(abc.ABC):
    """Base class: seeded request-trace generation over a model mix.

    Args:
        models: model names requests are drawn from.
        slo_s: per-model SLO mapping, or one budget for all models.
        seed: generator seed; same seed, same trace.
        model_weights: relative request frequency per model (uniform
            when omitted).
    """

    def __init__(self, models: Sequence[str], slo_s: SLOSpec,
                 seed: int = 0,
                 model_weights: Optional[Sequence[float]] = None) -> None:
        if not models:
            raise ValueError("workload needs at least one model")
        self.models = list(models)
        self.seed = seed
        self._slo = slo_s
        if model_weights is None:
            weights = np.full(len(self.models), 1.0 / len(self.models))
        else:
            if len(model_weights) != len(self.models):
                raise ValueError(
                    f"{len(model_weights)} weights for "
                    f"{len(self.models)} models")
            weights = np.asarray(model_weights, dtype=float)
            if np.any(weights < 0.0) or weights.sum() <= 0.0:
                raise ValueError("model weights must be non-negative "
                                 "and sum to a positive value")
            weights = weights / weights.sum()
        self._weights = weights

    def slo_of(self, model: str) -> float:
        """The latency budget assigned to ``model``."""
        if isinstance(self._slo, Mapping):
            try:
                return float(self._slo[model])
            except KeyError:
                raise KeyError(
                    f"no SLO configured for model {model!r}") from None
        return float(self._slo)

    # -- the arrival process, supplied by subclasses ------------------------

    @abc.abstractmethod
    def _initial_state(self) -> object:
        """Opaque initial state of the arrival process."""

    @abc.abstractmethod
    def _next_gap(self, rng: np.random.Generator,
                  state: object) -> Tuple[float, object]:
        """(inter-arrival gap, next state) of the arrival process."""

    # -- trace generation ----------------------------------------------------

    def generate(self, num_requests: int) -> List[Request]:
        """A deterministic trace of ``num_requests`` requests."""
        if num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        rng = np.random.default_rng(self.seed)
        state = self._initial_state()
        now = 0.0
        requests: List[Request] = []
        for request_id in range(num_requests):
            gap, state = self._next_gap(rng, state)
            now += gap
            index = int(rng.choice(len(self.models), p=self._weights))
            model = self.models[index]
            requests.append(Request(request_id=request_id, model=model,
                                    arrival_s=now,
                                    slo_s=self.slo_of(model)))
        return requests


class PoissonWorkload(WorkloadGenerator):
    """Open-loop Poisson arrivals at a constant offered rate.

    Args:
        rate_rps: mean arrival rate in requests per second.
    """

    def __init__(self, rate_rps: float, models: Sequence[str],
                 slo_s: SLOSpec, seed: int = 0,
                 model_weights: Optional[Sequence[float]] = None) -> None:
        super().__init__(models, slo_s, seed=seed,
                         model_weights=model_weights)
        self.rate_rps = _require_positive_finite("rate_rps", rate_rps)

    def _initial_state(self) -> object:
        return None

    def _next_gap(self, rng: np.random.Generator,
                  state: object) -> Tuple[float, object]:
        return float(rng.exponential(1.0 / self.rate_rps)), None


class BurstyWorkload(WorkloadGenerator):
    """Two-state MMPP arrivals: quiet base traffic with bursts.

    The process dwells in the base state (rate ``base_rate_rps``) for
    an exponentially distributed time of mean ``mean_base_s``, then
    switches to the burst state (rate ``burst_rate_rps``) for a mean of
    ``mean_burst_s``, and back.  Inter-arrival gaps are generated by
    racing the next-arrival exponential against the next state switch,
    which is the exact MMPP construction (competing exponentials), not
    a discretized approximation.
    """

    def __init__(self, base_rate_rps: float, burst_rate_rps: float,
                 mean_base_s: float, mean_burst_s: float,
                 models: Sequence[str], slo_s: SLOSpec, seed: int = 0,
                 model_weights: Optional[Sequence[float]] = None) -> None:
        super().__init__(models, slo_s, seed=seed,
                         model_weights=model_weights)
        self.base_rate_rps = _require_positive_finite(
            "base_rate_rps", base_rate_rps)
        self.burst_rate_rps = _require_positive_finite(
            "burst_rate_rps", burst_rate_rps)
        self.mean_base_s = _require_positive_finite(
            "mean_base_s", mean_base_s)
        self.mean_burst_s = _require_positive_finite(
            "mean_burst_s", mean_burst_s)

    @property
    def mean_rate_rps(self) -> float:
        """Long-run average arrival rate of the MMPP."""
        dwell = self.mean_base_s + self.mean_burst_s
        return (self.base_rate_rps * self.mean_base_s
                + self.burst_rate_rps * self.mean_burst_s) / dwell

    def _initial_state(self) -> object:
        return "base"

    def _next_gap(self, rng: np.random.Generator,
                  state: object) -> Tuple[float, object]:
        gap = 0.0
        while True:
            if state == "base":
                rate, dwell = self.base_rate_rps, self.mean_base_s
            else:
                rate, dwell = self.burst_rate_rps, self.mean_burst_s
            arrival = float(rng.exponential(1.0 / rate))
            switch = float(rng.exponential(dwell))
            if arrival <= switch:
                return gap + arrival, state
            gap += switch
            state = "burst" if state == "base" else "base"


def bursty_for_rate(rate_rps: float, models: Sequence[str],
                    slo_s: SLOSpec, seed: int = 0,
                    burstiness: float = 4.0,
                    model_weights: Optional[Sequence[float]] = None
                    ) -> BurstyWorkload:
    """A bursty workload whose long-run rate matches ``rate_rps``.

    The burst state runs ``burstiness`` times hotter than the base
    state; dwell times are chosen so the time-average rate equals the
    requested one and each state typically spans tens of requests.
    """
    _require_positive_finite("rate_rps", rate_rps)
    if not math.isfinite(burstiness) or burstiness <= 1.0:
        raise ValueError("burstiness must be finite and exceed 1.0")
    # Three quarters of the *time* in the base state, one quarter
    # bursting: base * 0.75 + burst * 0.25 == rate with burst == b *
    # base, so the dwell times must keep a 3:1 ratio.
    base = rate_rps / (0.75 + 0.25 * burstiness)
    burst = base * burstiness
    return BurstyWorkload(
        base_rate_rps=base, burst_rate_rps=burst,
        mean_base_s=30.0 / base, mean_burst_s=10.0 / base,
        models=models, slo_s=slo_s, seed=seed,
        model_weights=model_weights)


# -- trace-driven workloads ---------------------------------------------------

#: Version of the JSON trace schema :class:`TraceWorkload` understands.
TRACE_SCHEMA = 1


@dataclasses.dataclass(frozen=True)
class TraceSegment:
    """One piecewise-constant span of a workload trace.

    Attributes:
        start_s: offset of the segment inside the trace period;
            segments must start at strictly increasing offsets.
        rate_rps: arrival rate during the segment; zero is legal (a
            dead-of-night span) as long as some segment is positive.
        model_weights: per-segment model mix overriding the trace-wide
            one (populations may shift across the day).
    """

    start_s: float
    rate_rps: float
    model_weights: Optional[Mapping[str, float]] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.start_s) or self.start_s < 0.0:
            raise ValueError(f"segment start_s must be finite and "
                             f">= 0, got {self.start_s!r}")
        if not math.isfinite(self.rate_rps) or self.rate_rps < 0.0:
            raise ValueError(f"segment rate_rps must be finite and "
                             f">= 0, got {self.rate_rps!r}")


@dataclasses.dataclass(frozen=True)
class TenantClass:
    """One tenant of a multi-tenant trace.

    Attributes:
        name: tenant identifier stamped onto its requests.
        weight: relative share of the request stream.
        priority: priority class of the tenant's requests (lower is
            more urgent).
    """

    name: str
    weight: float
    priority: int = 0

    def __post_init__(self) -> None:
        _require_positive_finite(f"tenant {self.name!r} weight",
                                 self.weight)
        if self.priority < 0:
            raise ValueError(f"tenant {self.name!r} priority must be "
                             f">= 0, got {self.priority}")


class TraceWorkload(WorkloadGenerator):
    """Trace-driven arrivals: piecewise-constant rates over a period.

    The trace is a list of :class:`TraceSegment` spans inside a
    repeating ``period_s`` window (a synthetic "day"); arrivals are an
    inhomogeneous Poisson process generated by thinning against the
    trace's peak rate, which is exact for piecewise-constant rate
    functions and stays fully seeded.  Each request draws its model
    from the active segment's mix (or the trace-wide one) and its
    tenant -- and therefore priority class -- from the trace's tenant
    weights.

    Args:
        segments: the rate curve; start offsets must be strictly
            increasing, the first at 0.0, all inside the period.
        period_s: length of the repeating window.
        tenants: multi-tenant mix (one best-effort ``default`` tenant
            when omitted).
        name: label carried into serialized form.
    """

    def __init__(self, segments: Sequence[TraceSegment],
                 period_s: float, models: Sequence[str],
                 slo_s: SLOSpec, seed: int = 0,
                 model_weights: Optional[Sequence[float]] = None,
                 tenants: Optional[Sequence[TenantClass]] = None,
                 name: str = "trace") -> None:
        super().__init__(models, slo_s, seed=seed,
                         model_weights=model_weights)
        self.period_s = _require_positive_finite("period_s", period_s)
        if not segments:
            raise ValueError("a trace needs at least one segment")
        starts = [segment.start_s for segment in segments]
        if starts[0] != 0.0:
            raise ValueError("the first trace segment must start at "
                             f"0.0, got {starts[0]}")
        for earlier, later in zip(starts, starts[1:]):
            if later <= earlier:
                raise ValueError(
                    "trace segment boundaries must be strictly "
                    f"increasing, got {earlier} followed by {later}")
        if starts[-1] >= self.period_s:
            raise ValueError(
                f"segment at {starts[-1]} starts at or after the "
                f"period of {self.period_s}")
        if all(segment.rate_rps == 0.0 for segment in segments):
            raise ValueError("at least one trace segment needs a "
                             "positive rate")
        self.segments = tuple(segments)
        self.name = name
        self.tenants = tuple(tenants) if tenants else (
            TenantClass(name="default", weight=1.0, priority=0),)
        total = sum(tenant.weight for tenant in self.tenants)
        self._tenant_weights = np.asarray(
            [tenant.weight / total for tenant in self.tenants])
        self._segment_weights: List[np.ndarray] = []
        for segment in self.segments:
            if segment.model_weights is None:
                self._segment_weights.append(self._weights)
                continue
            missing = [m for m in segment.model_weights
                       if m not in self.models]
            if missing:
                raise ValueError(f"segment model weights name unknown "
                                 f"models: {missing}")
            weights = np.asarray([
                float(segment.model_weights.get(model, 0.0))
                for model in self.models])
            if np.any(weights < 0.0) or weights.sum() <= 0.0:
                raise ValueError("segment model weights must be "
                                 "non-negative and sum to a positive "
                                 "value")
            self._segment_weights.append(weights / weights.sum())

    # -- rate curve ----------------------------------------------------------

    def _segment_at(self, time_s: float) -> int:
        """Index of the segment active at an absolute time."""
        offset = math.fmod(time_s, self.period_s)
        active = 0
        for index, segment in enumerate(self.segments):
            if segment.start_s <= offset:
                active = index
            else:
                break
        return active

    def rate_at(self, time_s: float) -> float:
        """The instantaneous arrival rate at an absolute time."""
        return self.segments[self._segment_at(time_s)].rate_rps

    @property
    def peak_rate_rps(self) -> float:
        """The largest segment rate (the thinning envelope)."""
        return max(segment.rate_rps for segment in self.segments)

    @property
    def mean_rate_rps(self) -> float:
        """Time-average arrival rate over one period."""
        total = 0.0
        for index, segment in enumerate(self.segments):
            end = (self.segments[index + 1].start_s
                   if index + 1 < len(self.segments) else self.period_s)
            total += segment.rate_rps * (end - segment.start_s)
        return total / self.period_s

    # -- the arrival process -------------------------------------------------

    def _initial_state(self) -> object:
        return 0.0

    def _next_gap(self, rng: np.random.Generator,
                  state: object) -> Tuple[float, object]:
        """Thinning: candidate arrivals at the peak rate, each kept
        with probability rate(t)/peak."""
        now = float(state)  # type: ignore[arg-type]
        peak = self.peak_rate_rps
        gap = 0.0
        while True:
            step = float(rng.exponential(1.0 / peak))
            gap += step
            now += step
            if rng.uniform() * peak <= self.rate_at(now):
                return gap, now

    def generate(self, num_requests: int) -> List[Request]:
        """A deterministic trace of ``num_requests`` requests, each
        stamped with its segment's model mix and a tenant class."""
        if num_requests < 0:
            raise ValueError("num_requests must be >= 0")
        rng = np.random.default_rng(self.seed)
        now = 0.0
        requests: List[Request] = []
        for request_id in range(num_requests):
            gap, state = self._next_gap(rng, now)
            now = float(state)  # type: ignore[arg-type]
            weights = self._segment_weights[self._segment_at(now)]
            index = int(rng.choice(len(self.models), p=weights))
            model = self.models[index]
            tenant = self.tenants[int(rng.choice(
                len(self.tenants), p=self._tenant_weights))]
            requests.append(Request(
                request_id=request_id, model=model, arrival_s=now,
                slo_s=self.slo_of(model), tenant=tenant.name,
                priority=tenant.priority))
        return requests

    # -- (de)serialization ---------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        """The trace as its JSON schema (without SLOs and seed, which
        belong to the run, not the trace)."""
        segments: List[Dict[str, object]] = []
        for segment in self.segments:
            entry: Dict[str, object] = {"start_s": segment.start_s,
                                        "rate_rps": segment.rate_rps}
            if segment.model_weights is not None:
                entry["models"] = dict(segment.model_weights)
            segments.append(entry)
        return {
            "schema": TRACE_SCHEMA,
            "name": self.name,
            "period_s": self.period_s,
            "models": {model: float(weight) for model, weight
                       in zip(self.models, self._weights)},
            "tenants": {tenant.name: {"weight": tenant.weight,
                                      "priority": tenant.priority}
                        for tenant in self.tenants},
            "segments": segments,
        }

    @classmethod
    def from_json(cls, spec: Mapping[str, object], slo_s: SLOSpec,
                  seed: int = 0) -> "TraceWorkload":
        """Build a trace workload from its JSON schema.

        Raises:
            ValueError: on unknown schema versions or missing keys.
        """
        schema = spec.get("schema")
        if schema != TRACE_SCHEMA:
            raise ValueError(f"unsupported trace schema {schema!r} "
                             f"(expected {TRACE_SCHEMA})")
        for key in ("period_s", "models", "segments"):
            if key not in spec:
                raise ValueError(f"trace is missing the {key!r} key")
        model_map = spec["models"]
        if not isinstance(model_map, Mapping) or not model_map:
            raise ValueError("trace 'models' must be a non-empty "
                             "mapping of model name to weight")
        # Keep the file's own ordering: the generators draw models and
        # tenants by seeded *index*, so reordering would change the
        # trace a round-tripped file produces.
        models = list(model_map)
        weights = [float(model_map[m]) for m in models]
        tenants: Optional[List[TenantClass]] = None
        if "tenants" in spec:
            tenant_map = spec["tenants"]
            if not isinstance(tenant_map, Mapping) or not tenant_map:
                raise ValueError("trace 'tenants' must be a non-empty "
                                 "mapping when present")
            tenants = [
                TenantClass(name=name,
                            weight=float(entry["weight"]),
                            priority=int(entry.get("priority", 0)))
                for name, entry in tenant_map.items()]
        segments = [
            TraceSegment(start_s=float(entry["start_s"]),
                         rate_rps=float(entry["rate_rps"]),
                         model_weights=entry.get("models"))
            for entry in spec["segments"]]  # type: ignore[union-attr]
        return cls(segments=segments,
                   period_s=float(spec["period_s"]),  # type: ignore[arg-type]
                   models=models, slo_s=slo_s, seed=seed,
                   model_weights=weights, tenants=tenants,
                   name=str(spec.get("name", "trace")))


def load_trace(path: str, slo_s: SLOSpec, seed: int = 0
               ) -> TraceWorkload:
    """Load a :class:`TraceWorkload` from a JSON file."""
    with open(path) as handle:
        return TraceWorkload.from_json(json.load(handle), slo_s,
                                       seed=seed)


def diurnal_trace(mean_rate_rps: float, models: Sequence[str],
                  slo_s: SLOSpec, seed: int = 0,
                  period_s: float = 240.0, num_segments: int = 12,
                  peak_to_trough: float = 4.0,
                  tenants: Optional[Sequence[TenantClass]] = None
                  ) -> TraceWorkload:
    """A sinusoidal day: quiet night, busy evening.

    The rate curve is a sampled sinusoid whose time average equals
    ``mean_rate_rps`` and whose peak-to-trough ratio is
    ``peak_to_trough``; the period defaults to a compressed "day" so
    simulations of a few hundred requests still see the full cycle.
    """
    _require_positive_finite("mean_rate_rps", mean_rate_rps)
    if not math.isfinite(peak_to_trough) or peak_to_trough < 1.0:
        raise ValueError("peak_to_trough must be finite and >= 1.0")
    if num_segments < 2:
        raise ValueError("num_segments must be >= 2")
    swing = (peak_to_trough - 1.0) / (peak_to_trough + 1.0)
    segments = []
    for index in range(num_segments):
        phase = 2.0 * math.pi * (index + 0.5) / num_segments
        rate = mean_rate_rps * (1.0 + swing * math.sin(phase - math.pi
                                                       / 2.0))
        segments.append(TraceSegment(
            start_s=period_s * index / num_segments, rate_rps=rate))
    return TraceWorkload(segments=segments, period_s=period_s,
                         models=models, slo_s=slo_s, seed=seed,
                         tenants=tenants, name="diurnal")


def flash_crowd_trace(base_rate_rps: float, models: Sequence[str],
                      slo_s: SLOSpec, seed: int = 0,
                      spike_factor: float = 8.0,
                      period_s: float = 120.0,
                      spike_start_s: float = 60.0,
                      spike_duration_s: float = 20.0,
                      tenants: Optional[Sequence[TenantClass]] = None
                      ) -> TraceWorkload:
    """A flash crowd: steady base traffic with one hot window per
    period in which arrivals run ``spike_factor`` times hotter."""
    _require_positive_finite("base_rate_rps", base_rate_rps)
    _require_positive_finite("spike_duration_s", spike_duration_s)
    if not math.isfinite(spike_factor) or spike_factor <= 1.0:
        raise ValueError("spike_factor must be finite and exceed 1.0")
    if not 0.0 < spike_start_s < period_s:
        raise ValueError("spike_start_s must fall inside the period")
    if spike_start_s + spike_duration_s >= period_s:
        raise ValueError("the spike must end before the period does")
    segments = [
        TraceSegment(start_s=0.0, rate_rps=base_rate_rps),
        TraceSegment(start_s=spike_start_s,
                     rate_rps=base_rate_rps * spike_factor),
        TraceSegment(start_s=spike_start_s + spike_duration_s,
                     rate_rps=base_rate_rps),
    ]
    return TraceWorkload(segments=segments, period_s=period_s,
                         models=models, slo_s=slo_s, seed=seed,
                         tenants=tenants, name="flash-crowd")
