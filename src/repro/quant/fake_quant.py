"""Fake quantization, the training-time model of QUInt8 arithmetic.

TensorFlow's fake quantization [37] simulates 8-bit inference during
training: values are quantized to the 8-bit grid and immediately
dequantized, so the forward pass sees quantization error while the
backward pass treats the operation as identity inside the clamped range
(the "straight-through estimator").  Section 4.3 of the paper uses these
operations to retrain networks and recover the accuracy lost to
post-training QUInt8 quantization (the ``QUInt8+FakeQuant`` bars of
Figure 10).
"""

from __future__ import annotations

import dataclasses
from typing import Tuple

import numpy as np

from ..tensor import QuantParams


def fake_quantize(values: np.ndarray, qparams: QuantParams) -> np.ndarray:
    """Quantize-then-dequantize ``values`` onto the 8-bit grid."""
    return qparams.dequantize(qparams.quantize(values))


def fake_quantize_gradient(values: np.ndarray,
                           qparams: QuantParams) -> np.ndarray:
    """Straight-through gradient mask of :func:`fake_quantize`.

    1.0 where the input lies inside the representable range (gradient
    passes through), 0.0 where the input was clamped.
    """
    inside = ((values >= qparams.range_min) &
              (values <= qparams.range_max))
    return inside.astype(np.float32)


@dataclasses.dataclass
class EmaRangeObserver:
    """Tracks a tensor's range with an exponential moving average.

    Quantization-aware training learns the activation ranges during
    training; TensorFlow does so with EMA min/max trackers.  The decay
    smooths over batch-to-batch variation so the deployed range reflects
    the typical activation distribution, not outliers.
    """

    decay: float = 0.99
    minimum: float = 0.0
    maximum: float = 0.0
    initialized: bool = False

    def observe(self, values: np.ndarray) -> None:
        """Fold one batch of values into the tracked range."""
        batch_min = float(values.min())
        batch_max = float(values.max())
        if not self.initialized:
            self.minimum = batch_min
            self.maximum = batch_max
            self.initialized = True
            return
        self.minimum = (self.decay * self.minimum
                        + (1.0 - self.decay) * batch_min)
        self.maximum = (self.decay * self.maximum
                        + (1.0 - self.decay) * batch_max)

    def qparams(self) -> QuantParams:
        """Quantization parameters covering the tracked range."""
        return QuantParams.from_range(self.minimum, self.maximum)


def fake_quantize_with_observer(values: np.ndarray,
                                observer: EmaRangeObserver,
                                training: bool = True
                                ) -> Tuple[np.ndarray, np.ndarray]:
    """Observe, fake-quantize, and return (output, gradient mask).

    During training the observer is updated before quantizing, mirroring
    TensorFlow's FakeQuantWithMinMaxVars behaviour.
    """
    if training:
        observer.observe(values)
    qparams = observer.qparams()
    return (fake_quantize(values, qparams),
            fake_quantize_gradient(values, qparams))
