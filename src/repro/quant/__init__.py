"""Quantization: 8-bit linear, half precision, fake-quant, calibration."""

from .calibrate import (CalibrationTable, MinMaxObserver, PercentileObserver)
from .fake_quant import (EmaRangeObserver, fake_quantize,
                         fake_quantize_gradient, fake_quantize_with_observer)
from .half import (dequantize_lut, dequantize_to_half, from_half, half_ulp,
                   tensor_to_half, to_half)
from .linear import (dequantize, prepare_requantize, quantize,
                     quantize_tensor, quantized_multiplier, requantize,
                     requantize_float_reference, requantize_prepared)

__all__ = [
    "CalibrationTable",
    "MinMaxObserver",
    "PercentileObserver",
    "EmaRangeObserver",
    "fake_quantize",
    "fake_quantize_gradient",
    "fake_quantize_with_observer",
    "dequantize_lut",
    "dequantize_to_half",
    "from_half",
    "half_ulp",
    "tensor_to_half",
    "to_half",
    "dequantize",
    "prepare_requantize",
    "quantize",
    "quantize_tensor",
    "quantized_multiplier",
    "requantize",
    "requantize_float_reference",
    "requantize_prepared",
]
