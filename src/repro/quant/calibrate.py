"""Post-training calibration of activation quantization ranges.

The paper assumes "the 8-bit linear quantization is already applied to
the given NN" (Section 6) with per-layer output ranges learned during
training.  For post-training quantization we reproduce the standard
recipe: run the float network over a calibration set while min/max
observers record each layer's output range, then freeze those ranges
into :class:`QuantParams` that the executor's requantization steps use.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional

import numpy as np

from ..errors import CalibrationError
from ..tensor import QuantParams


@dataclasses.dataclass
class MinMaxObserver:
    """Records the running min/max of every batch it sees."""

    minimum: float = np.inf
    maximum: float = -np.inf
    samples: int = 0

    def observe(self, values: np.ndarray) -> None:
        """Fold one batch of float values into the running range."""
        if values.size == 0:
            return
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))
        self.samples += 1

    @property
    def calibrated(self) -> bool:
        """True once at least one batch has been observed."""
        return self.samples > 0

    def qparams(self) -> QuantParams:
        """Freeze the observed range into quantization parameters."""
        if not self.calibrated:
            raise CalibrationError(
                "observer has seen no data; run calibration first")
        return QuantParams.from_range(self.minimum, self.maximum)


@dataclasses.dataclass
class PercentileObserver:
    """Records a clipped range that ignores extreme outliers.

    Clipping at a high percentile (99.9 by default) often beats plain
    min/max for activations with long tails, at the cost of saturating
    the tail.  Exposed so the accuracy experiments can compare both.
    """

    percentile: float = 99.9
    _values_seen: int = 0
    _lows: Optional[list] = None
    _highs: Optional[list] = None

    def __post_init__(self) -> None:
        self._lows = []
        self._highs = []

    def observe(self, values: np.ndarray) -> None:
        """Fold one batch into the tracked percentile bounds."""
        if values.size == 0:
            return
        low = float(np.percentile(values, 100.0 - self.percentile))
        high = float(np.percentile(values, self.percentile))
        self._lows.append(low)
        self._highs.append(high)
        self._values_seen += 1

    @property
    def calibrated(self) -> bool:
        """True once at least one batch has been observed."""
        return self._values_seen > 0

    def qparams(self) -> QuantParams:
        """Freeze the mean percentile bounds into parameters."""
        if not self.calibrated:
            raise CalibrationError(
                "observer has seen no data; run calibration first")
        return QuantParams.from_range(float(np.mean(self._lows)),
                                      float(np.mean(self._highs)))


class CalibrationTable:
    """Maps layer names to frozen activation quantization parameters."""

    def __init__(self) -> None:
        self._observers: Dict[str, MinMaxObserver] = {}
        self._frozen: Dict[str, QuantParams] = {}

    def observe(self, layer_name: str, values: np.ndarray) -> None:
        """Record one batch of a layer's float output."""
        observer = self._observers.setdefault(layer_name, MinMaxObserver())
        observer.observe(values)

    def freeze(self) -> None:
        """Convert all observed ranges into quantization parameters."""
        for name, observer in self._observers.items():
            self._frozen[name] = observer.qparams()

    def set(self, layer_name: str, qparams: QuantParams) -> None:
        """Install externally supplied parameters for a layer."""
        self._frozen[layer_name] = qparams

    def get(self, layer_name: str) -> QuantParams:
        """Parameters for ``layer_name``.

        Raises:
            CalibrationError: if the layer was never calibrated.
        """
        try:
            return self._frozen[layer_name]
        except KeyError:
            raise CalibrationError(
                f"no calibrated range for layer {layer_name!r}; "
                "run calibration and freeze() first") from None

    def __contains__(self, layer_name: str) -> bool:
        return layer_name in self._frozen

    def layers(self) -> Iterable[str]:
        """Names of all frozen layers."""
        return self._frozen.keys()
