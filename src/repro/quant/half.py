"""Half-precision (F16) conversion helpers.

F16 (IEEE 754 binary16) keeps 5 exponent and 10 significand bits --
three and thirteen fewer than F32, as Section 4.1 notes.  The paper's
GPU path loads QUInt8 data and converts it to F16 on the fly; these
helpers model both the plain F32<->F16 casts and that on-the-fly
dequantize-to-half step.
"""

from __future__ import annotations

import numpy as np

from ..tensor import DType, QuantParams, Tensor


def to_half(values: np.ndarray) -> np.ndarray:
    """Cast real values to float16 (round-to-nearest-even).

    Values beyond the f16 range overflow to infinity, exactly as the
    hardware cast would; numpy's overflow warning is suppressed because
    that saturation is the intended semantics.
    """
    with np.errstate(over="ignore"):
        return np.asarray(values).astype(np.float16)


def from_half(values: np.ndarray) -> np.ndarray:
    """Widen float16 values back to float32 (exact)."""
    return np.asarray(values, dtype=np.float16).astype(np.float32)


def tensor_to_half(tensor: Tensor) -> Tensor:
    """Return an F16 version of ``tensor`` via the real domain."""
    return Tensor(to_half(tensor.to_float()), DType.F16)


def dequantize_to_half(codes: np.ndarray, qparams: QuantParams) -> np.ndarray:
    """Dequantize QUInt8 codes directly to float16.

    Models the GPU's on-the-fly integer-to-half conversion (Figure 9b):
    the subtraction of the zero point happens in integer arithmetic and
    the scaling happens in half precision, matching what an OpenCL
    kernel operating on ``half`` vectors would compute.
    """
    centred = np.asarray(codes).astype(np.int16) - np.int16(qparams.zero_point)
    return (centred.astype(np.float16) * np.float16(qparams.scale))


def dequantize_lut(qparams: QuantParams) -> np.ndarray:
    """The 256-entry F16 lookup table of :func:`dequantize_to_half`.

    ``dequantize_to_half`` is a pure elementwise function of the code,
    so gathering through this table (``lut[codes]``) is bit-identical
    to calling it on the codes directly.  Two properties make the table
    the bridge between the integer and float pipelines of one layer:

    * applying it *after* an index gather (im2col) equals applying it
      before -- shared uint8 column matrices can be dequantized in
      place of re-gathering the float input;
    * ``lut[zero_point] == 0.0`` exactly, so the integer pipeline's
      zero-point padding maps onto the float pipeline's 0.0 padding.
    """
    return dequantize_to_half(np.arange(256, dtype=np.uint8), qparams)


def half_ulp(value: float) -> float:
    """The gap between ``value`` and the next representable float16.

    Useful for accuracy assertions: F16 has ~3 decimal digits of
    precision, so comparisons against F32 references need tolerances of
    a few ULPs rather than machine epsilon.
    """
    half = np.float16(value)
    next_half = np.nextafter(half, np.float16(np.inf), dtype=np.float16)
    return float(next_half.astype(np.float64) - half.astype(np.float64))
