"""8-bit linear quantization primitives (Jacob et al., CVPR 2018).

These functions implement the arithmetic the paper's Section 4.1
describes: values are stored as 8-bit unsigned integers related to reals
by ``real = scale * (q - zero_point)``; multiplying two 8-bit values
yields 16 bits and sums accumulate in 32 bits; *requantization* converts
the 32-bit accumulators back to 8-bit codes using the pre-trained output
range.  The requantization path mirrors gemmlowp's fixed-point
multiplier so the integer pipeline is faithful to what runs on a real
CPU's vector ALUs.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import QuantizationError
from ..tensor import DType, QuantParams, Tensor
from ..tensor.qparams import QMAX, QMIN


def quantize(values: np.ndarray, qparams: QuantParams) -> np.ndarray:
    """Quantize real values to uint8 codes under ``qparams``."""
    return qparams.quantize(values)


def dequantize(codes: np.ndarray, qparams: QuantParams) -> np.ndarray:
    """Dequantize uint8 codes to float32 reals under ``qparams``."""
    return qparams.dequantize(codes)


def quantize_tensor(tensor: Tensor,
                    qparams: "QuantParams | None" = None) -> Tensor:
    """Return a QUInt8 version of ``tensor``.

    When ``qparams`` is omitted the parameters are derived from the
    tensor's own min/max (post-training quantization).
    """
    values = tensor.to_float()
    if qparams is None:
        qparams = QuantParams.from_array(values)
    return Tensor(qparams.quantize(values), DType.QUINT8, qparams)


def quantized_multiplier(real_multiplier: float) -> Tuple[int, int]:
    """Decompose a real multiplier as ``m * 2**-shift`` with m in Q31.

    gemmlowp/TFLite represent the requantization multiplier
    ``input_scale * weight_scale / output_scale`` as a 32-bit
    fixed-point mantissa in [0.5, 1.0) and a shift, so the whole
    pipeline stays in integer arithmetic.  Multipliers below one use a
    right shift (positive); multipliers of one or more (possible with
    narrow output ranges) use a left shift (negative), as in TFLite's
    ``QuantizeMultiplier``.

    Returns:
        (quantized_multiplier, right_shift) with
        ``real_multiplier ~= quantized_multiplier * 2**(-31 - right_shift)``.

    Raises:
        QuantizationError: if the multiplier is not positive and finite.
    """
    if not math.isfinite(real_multiplier) or real_multiplier <= 0.0:
        raise QuantizationError(
            f"requantization multiplier must be positive and finite, "
            f"got {real_multiplier!r}")
    shift = 0
    while real_multiplier < 0.5:
        real_multiplier *= 2.0
        shift += 1
    while real_multiplier >= 1.0:
        real_multiplier /= 2.0
        shift -= 1
    q = int(round(real_multiplier * (1 << 31)))
    if q == (1 << 31):  # round-up to 1.0: renormalize
        q //= 2
        shift -= 1
    return q, shift


def _saturating_rounding_doubling_high_mul(a: np.ndarray,
                                           multiplier: int) -> np.ndarray:
    """gemmlowp's SaturatingRoundingDoublingHighMul on int32 arrays."""
    product = a.astype(np.int64) * np.int64(multiplier)
    nudge = np.where(product >= 0, np.int64(1 << 30), np.int64(1 - (1 << 30)))
    result = (product + nudge) >> 31
    return np.clip(result, -(1 << 31), (1 << 31) - 1).astype(np.int32)


def _rounding_divide_by_pot(value: np.ndarray, exponent: int) -> np.ndarray:
    """Rounding arithmetic right shift by ``exponent`` (power of two).

    A negative exponent performs a saturating left shift instead,
    matching TFLite's handling of multipliers >= 1.
    """
    if exponent == 0:
        return value
    if exponent < 0:
        shifted = value.astype(np.int64) << (-exponent)
        return np.clip(shifted, -(1 << 31),
                       (1 << 31) - 1).astype(np.int32)
    mask = np.int32((1 << exponent) - 1)
    remainder = value & mask
    threshold = (mask >> 1) + np.where(value < 0, 1, 0).astype(np.int32)
    return (value >> exponent) + (remainder > threshold).astype(np.int32)


def prepare_requantize(input_scale: float, weight_scale: float,
                       output: QuantParams) -> Tuple[int, int]:
    """Pre-decompose the requantization multiplier of one layer.

    The multiplier ``input_scale * weight_scale / output.scale`` and
    its fixed-point (mantissa, shift) decomposition depend only on the
    quantization parameters, so a compiled program computes them once
    at compile time and :func:`requantize_prepared` replays only the
    integer arithmetic per call.
    """
    real_multiplier = (input_scale * weight_scale) / output.scale
    return quantized_multiplier(real_multiplier)


def requantize_prepared(acc: np.ndarray, mantissa: int, shift: int,
                        output: QuantParams) -> np.ndarray:
    """Convert i32 accumulators to uint8 codes with a pre-decomposed
    multiplier (see :func:`prepare_requantize`).

    Byte-identical to :func:`requantize` called with the scales the
    (mantissa, shift) pair was prepared from.
    """
    acc = np.asarray(acc, dtype=np.int32)
    if shift < 0:
        # Multiplier >= 1: apply the saturating left shift *before*
        # the rounding high-mul (TFLite's MultiplyByQuantizedMultiplier
        # order), otherwise small accumulators lose all precision.
        acc = _rounding_divide_by_pot(acc, shift)
        shift = 0
    scaled = _saturating_rounding_doubling_high_mul(acc, mantissa)
    scaled = _rounding_divide_by_pot(scaled, shift)
    shifted = scaled + np.int32(output.zero_point)
    return np.clip(shifted, QMIN, QMAX).astype(np.uint8)


def requantize(acc: np.ndarray, input_scale: float, weight_scale: float,
               output: QuantParams) -> np.ndarray:
    """Convert i32 accumulators to uint8 codes under ``output``.

    Implements the gemmlowp fixed-point pipeline: the accumulator (which
    represents ``real / (input_scale * weight_scale)``) is rescaled by
    the fixed-point multiplier and shifted to land on the output grid,
    then offset by the output zero point and saturated to [0, 255].
    """
    mantissa, shift = prepare_requantize(input_scale, weight_scale, output)
    return requantize_prepared(acc, mantissa, shift, output)


def requantize_float_reference(acc: np.ndarray, input_scale: float,
                               weight_scale: float,
                               output: QuantParams) -> np.ndarray:
    """Float-domain reference for :func:`requantize` (used in tests)."""
    acc = np.asarray(acc, dtype=np.float64)
    real = acc * (input_scale * weight_scale)
    return output.quantize(real)
