"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-models`` / ``list-socs`` -- what can be run.
* ``run`` -- one inference through a chosen mechanism; prints latency,
  energy, and optionally the plan and a Gantt chart.
* ``compare`` -- all mechanisms on one model/SoC.
* ``verify`` -- statically verify plans, timelines, and dtype flow for
  one model (or, with ``--all``, the whole zoo) on one or all SoCs.
* ``figure`` -- regenerate one of the paper's figures.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .models import build_model, list_models, model_info
from .runtime import (MuLayer, run_layer_to_processor,
                      run_single_processor)
from .soc import SOCS, soc_by_name
from .tensor import parse_dtype

#: Figure harness functions by CLI name (resolved lazily -- some pull
#: in the training stack).
_FIGURES = ("fig05", "fig06", "fig08", "fig10", "fig12", "table1",
            "fig16", "fig17", "fig18")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="uLayer (EuroSys'19) reproduction on a simulated "
                    "mobile SoC")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-models", help="list registered models")
    sub.add_parser("list-socs", help="list simulated SoCs")

    run = sub.add_parser("run", help="run one inference")
    run.add_argument("--model", required=True)
    run.add_argument("--soc", default="exynos7420",
                     help="exynos7420 | exynos7880 | exynos7420npu")
    run.add_argument("--mechanism", default="mulayer",
                     choices=["mulayer", "l2p", "cpu", "gpu", "npu"])
    run.add_argument("--dtype", default="quint8",
                     help="data type for single-processor mechanisms")
    run.add_argument("--oracle", action="store_true",
                     help="plan with oracle costs instead of the "
                          "latency predictor")
    run.add_argument("--plan", action="store_true",
                     help="print the execution plan")
    run.add_argument("--gantt", action="store_true",
                     help="print a Gantt chart of the timeline")

    compare = sub.add_parser("compare",
                             help="compare all mechanisms on one model")
    compare.add_argument("--model", required=True)
    compare.add_argument("--soc", default="exynos7420")

    verify = sub.add_parser(
        "verify",
        help="statically verify plans, timelines, and dtype flow")
    verify.add_argument("model", nargs="?", default=None,
                        help="model name (omit with --all)")
    verify.add_argument("soc", nargs="?", default=None,
                        help="SoC name (default: every simulated SoC)")
    verify.add_argument("--mechanism", action="append",
                        dest="mechanisms", metavar="MECH",
                        choices=["mulayer", "l2p", "cpu", "gpu", "npu"],
                        help="mechanism to verify (repeatable; "
                             "default: all the SoC supports)")
    verify.add_argument("--all", action="store_true", dest="all_models",
                        help="verify every model in the zoo")
    verify.add_argument("--json", action="store_true",
                        help="emit diagnostics as JSON")

    figure = sub.add_parser("figure",
                            help="regenerate one paper figure")
    figure.add_argument("name", choices=_FIGURES)
    return parser


def _cmd_list_models() -> int:
    for name in list_models():
        info = model_info(name)
        graph = build_model(name, with_weights=False)
        print(f"{name:18s} {info.display_name:22s} "
              f"{graph.total_macs() / 1e6:10.1f} MMACs  "
              f"{info.paper_class}")
    return 0


def _cmd_list_socs() -> int:
    for name, soc in sorted(SOCS.items()):
        processors = ", ".join(
            soc.processor(resource).name
            for resource in soc.resources())
        print(f"{name:16s} {soc.display_name}\n"
              f"{'':16s}   {processors}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    soc = soc_by_name(args.soc)
    graph = build_model(args.model, with_weights=False)
    if args.mechanism == "mulayer":
        runtime = MuLayer(soc, use_oracle_costs=args.oracle)
        result = runtime.run(graph)
        plan = runtime.plan(graph)
    elif args.mechanism == "l2p":
        result = run_layer_to_processor(soc, graph)
        plan = None
    else:
        result = run_single_processor(soc, graph, args.mechanism,
                                      parse_dtype(args.dtype))
        plan = None
    print(f"{args.model} on {soc.display_name} via {result.mechanism}:")
    print(f"  latency {result.latency_ms:10.3f} ms")
    print(f"  energy  {result.energy_mj:10.3f} mJ "
          f"(dynamic {result.energy.dynamic_j * 1e3:.1f}, "
          f"idle {result.energy.idle_j * 1e3:.1f}, "
          f"static {result.energy.static_j * 1e3:.1f}, "
          f"dram {result.energy.dram_j * 1e3:.1f})")
    print(f"  traffic {result.traffic_bytes / 1e6:10.3f} MB")
    if args.plan and plan is not None:
        print("\nexecution plan:")
        for name, assignment in plan.assignments.items():
            shares = ", ".join(f"{r}={s:.2f}"
                               for r, s in assignment.shares().items())
            print(f"  {name:30s} {shares}")
        for branch_assignment in plan.branch_assignments:
            region = branch_assignment.region
            print(f"  [branches {region.fork} -> {region.join}: "
                  f"{branch_assignment.mapping}]")
    if args.gantt:
        from .harness import render_gantt
        print("\n" + render_gantt(result.timeline, width=100))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .harness import format_table
    from .tensor import DType
    soc = soc_by_name(args.soc)
    graph = build_model(args.model, with_weights=False)
    rows = []
    for resource, dtype in (("cpu", DType.F32), ("cpu", DType.QUINT8),
                            ("gpu", DType.F32), ("gpu", DType.F16)):
        result = run_single_processor(soc, graph, resource, dtype)
        rows.append([f"{resource}-{dtype}", result.latency_ms,
                     result.energy_mj])
    if soc.has_npu:
        result = run_single_processor(soc, graph, "npu", DType.QUINT8)
        rows.append(["npu-quint8", result.latency_ms, result.energy_mj])
    l2p = run_layer_to_processor(soc, graph)
    rows.append(["layer-to-processor", l2p.latency_ms, l2p.energy_mj])
    mulayer = MuLayer(soc).run(graph)
    rows.append(["ulayer", mulayer.latency_ms, mulayer.energy_mj])
    print(format_table(["mechanism", "latency_ms", "energy_mj"], rows,
                       title=f"{args.model} on {soc.display_name}"))
    print(f"\nulayer speedup over layer-to-processor: "
          f"{l2p.latency_s / mulayer.latency_s:.2f}x")
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json as json_module

    from .analysis import verify_sweep
    if args.all_models:
        models = None
    elif args.model is not None:
        models = [args.model]
    else:
        print("verify: give a model name or --all", file=sys.stderr)
        return 2
    socs = [args.soc] if args.soc is not None else None
    entries = verify_sweep(models=models, socs=socs,
                           mechanisms=args.mechanisms)
    if args.json:
        print(json_module.dumps(
            [{"model": e.model, "soc": e.soc,
              "mechanism": e.mechanism,
              "diagnostics": [d.to_dict() for d in e.report]}
             for e in entries], indent=2))
    else:
        for entry in entries:
            print(f"{entry.model:18s} {entry.soc:14s} "
                  f"{entry.mechanism:8s} {entry.report.summary()}")
            for diagnostic in entry.report:
                print(f"    {diagnostic.render()}")
    dirty = sum(1 for e in entries if not e.report.clean)
    if not args.json:
        print(f"{len(entries)} mechanism runs verified, "
              f"{dirty} with diagnostics")
    return 1 if dirty else 0


def _cmd_figure(name: str) -> int:
    from . import harness
    functions = {
        "fig05": harness.fig05_perlayer_vgg,
        "fig06": harness.fig06_nn_latency,
        "fig08": harness.fig08_quantization_latency,
        "fig10": harness.fig10_quantization_accuracy,
        "fig12": harness.fig12_branch_potential,
        "table1": harness.table1_applicability,
        "fig16": harness.fig16_e2e_latency,
        "fig17": harness.fig17_ablation,
        "fig18": harness.fig18_energy,
    }
    print(functions[name]().render())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-models":
        return _cmd_list_models()
    if args.command == "list-socs":
        return _cmd_list_socs()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "figure":
        return _cmd_figure(args.name)
    return 1


if __name__ == "__main__":
    sys.exit(main())
