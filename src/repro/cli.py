"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list-models`` / ``list-socs`` -- what can be run.
* ``run`` -- one inference through a chosen mechanism; prints latency,
  energy, and optionally the plan and a Gantt chart.
* ``compare`` -- all mechanisms on one model/SoC.
* ``verify`` -- statically verify plans, timelines, and dtype flow for
  one model (or, with ``--all``, the whole zoo) on one or all SoCs.
* ``serve`` -- simulate a multi-request stream against a device fleet
  under a chosen scheduler and report serving metrics.
* ``cluster`` -- simulate a cluster of device pools behind a router,
  with replica placement, autoscaling, and trace-driven workloads.
* ``figure`` -- regenerate one of the paper's figures.
* ``bench`` -- wall-clock benchmark of functional execution, the
  compiled fused path, and the sweep harness; writes
  ``BENCH_e2e.json``.

``run``, ``serve``, and ``verify`` accept ``--compiled`` (run the
compiled fused execution path / prove it consistent, rule PV012);
``bench`` times it by default (``--no-compiled`` to skip).
``run``, ``serve``, and ``bench`` accept ``--workers N`` -- the
worker-thread count for compiled execution (the cooperative-slice and
branch-parallel runtime; outputs are byte-identical at any count).
``run``, ``compare``, ``verify``, ``serve``, ``cluster``, and
``bench`` all accept ``--json`` for machine-readable output.
``verify``, ``figure``, ``serve``, ``cluster``, and ``bench`` accept
``--jobs N`` to fan independent sweep units across a process pool
(results are deterministic either way); the default is the CPU count
capped at 8.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from .harness.parallel import default_cli_jobs
from .models import build_model, list_models, model_info
from .runtime import (MuLayer, run_layer_to_processor,
                      run_single_processor)
from .soc import SOCS, soc_by_name
from .tensor import parse_dtype

#: Figure harness functions by CLI name (resolved lazily -- some pull
#: in the training stack).
_FIGURES = ("fig05", "fig06", "fig08", "fig10", "fig12", "table1",
            "fig16", "fig17", "fig18")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="uLayer (EuroSys'19) reproduction on a simulated "
                    "mobile SoC")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-models", help="list registered models")
    sub.add_parser("list-socs", help="list simulated SoCs")

    run = sub.add_parser("run", help="run one inference")
    run.add_argument("--model", required=True)
    run.add_argument("--soc", default="exynos7420",
                     help="exynos7420 | exynos7880 | exynos7420npu")
    run.add_argument("--mechanism", default="mulayer",
                     choices=["mulayer", "l2p", "cpu", "gpu", "npu"])
    run.add_argument("--dtype", default="quint8",
                     help="data type for single-processor mechanisms")
    run.add_argument("--oracle", action="store_true",
                     help="plan with oracle costs instead of the "
                          "latency predictor")
    run.add_argument("--compiled", action="store_true",
                     help="execute one functional inference through "
                          "the compiled fused program (mulayer "
                          "mechanism only): installs weights, checks "
                          "byte-identity against the per-layer "
                          "interpreter, and reports the program's "
                          "fused steps and arena size")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="worker threads for --compiled execution "
                          "(default: CPU count capped at 4; 1 = the "
                          "serial loop; outputs are byte-identical "
                          "either way)")
    run.add_argument("--autotune", action="store_true",
                     help="with --compiled: microbenchmark the legal "
                          "kernel variants of every fused step at "
                          "compile time and bake the fastest into the "
                          "program (decisions persist in the tune "
                          "cache)")
    run.add_argument("--tune-cache", default=None, metavar="PATH",
                     help="tune-cache file for --autotune (default: "
                          "~/.cache/repro-tune/cache.json, or "
                          "$XDG_CACHE_HOME when set)")
    run.add_argument("--allow-approx", action="store_true",
                     help="with --autotune: also consider approximate "
                          "variants (Winograd F(2,3) for 3x3/stride-1 "
                          "float convs), tolerance-checked instead of "
                          "byte-checked; the run's own identity check "
                          "then compares within tolerance too")
    run.add_argument("--plan", action="store_true",
                     help="print the execution plan")
    run.add_argument("--gantt", action="store_true",
                     help="print a Gantt chart of the timeline")
    run.add_argument("--json", action="store_true",
                     help="emit the result as JSON")

    compare = sub.add_parser("compare",
                             help="compare all mechanisms on one model")
    compare.add_argument("--model", required=True)
    compare.add_argument("--soc", default="exynos7420")
    compare.add_argument("--json", action="store_true",
                         help="emit the comparison as JSON")

    serve = sub.add_parser(
        "serve",
        help="simulate SLO-aware serving of a request stream on a "
             "fleet of SoC devices")
    serve.add_argument("--soc", action="append", dest="socs",
                       metavar="SOC",
                       help="SoC type; repeat for a mixed fleet "
                            "(default: exynos7420)")
    serve.add_argument("--devices", type=int, default=2,
                       help="number of devices in the fleet")
    serve.add_argument("--requests", type=int, default=200,
                       help="number of requests to simulate")
    serve.add_argument("--seed", type=int, default=0,
                       help="workload seed (same seed, same trace)")
    serve.add_argument("--scheduler", default="edf",
                       choices=["fifo", "least-loaded", "edf", "batch"],
                       help="scheduling policy")
    serve.add_argument("--max-batch", type=int, default=None,
                       metavar="N",
                       help="batch up to N same-model requests per "
                            "dispatch (batch/edf schedulers; "
                            "default: 4 for batch, 1 for edf)")
    serve.add_argument("--batch-timeout-ms", type=float, default=None,
                       metavar="MS",
                       help="batch scheduler: flush a partial batch "
                            "once its oldest request has waited MS "
                            "milliseconds (default 50)")
    serve.add_argument("--workload", default="poisson",
                       choices=["poisson", "bursty", "diurnal",
                                "flash-crowd"],
                       help="arrival process")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="load the workload from a JSON trace file "
                            "(overrides --workload; see "
                            "repro.serve.workload.TraceWorkload)")
    serve.add_argument("--models", default=None,
                       help="comma-separated model names "
                            "(default: the mini zoo)")
    serve.add_argument("--rate", type=float, default=None,
                       help="offered load in requests/s "
                            "(default: 70%% of fleet capacity)")
    serve.add_argument("--load", type=float, default=None,
                       help="offered load as a fraction of fleet "
                            "capacity (overrides --rate)")
    serve.add_argument("--slo-factor", type=float, default=4.0,
                       help="per-model SLO as a multiple of its "
                            "unloaded uLayer latency")
    serve.add_argument("--compiled", action="store_true",
                       help="execute functional dispatches through "
                            "compiled fused programs cached next to "
                            "their plans (serve dispatches are "
                            "timing-only, so this exercises the "
                            "program cache plumbing)")
    serve.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker threads shared by the fleet's "
                            "compiled executors (one pool for all "
                            "replicas; default 1 = serial)")
    serve.add_argument("--autotune", action="store_true",
                       help="with --compiled: autotune compiled "
                            "programs through one shared tuner; plan "
                            "warming then compiles and tunes each "
                            "unique (model, soc, batch) program once "
                            "for the whole fleet")
    serve.add_argument("--tune-cache", default=None, metavar="PATH",
                       help="tune-cache file for --autotune (default: "
                            "~/.cache/repro-tune/cache.json, or "
                            "$XDG_CACHE_HOME when set)")
    serve.add_argument("--allow-approx", action="store_true",
                       help="with --autotune: also consider "
                            "approximate variants (Winograd F(2,3)); "
                            "tolerance-checked, not byte-checked")
    serve.add_argument("--plan-cache-size", type=int, default=None,
                       metavar="N",
                       help="bound the shared plan cache to N entries "
                            "(LRU; default unbounded)")
    serve.add_argument("--jobs", type=int, default=default_cli_jobs(),
                       metavar="N",
                       help="warm the plan cache with N processes "
                            "before simulating (default: CPU count "
                            "capped at 8; 1 = serial)")
    serve.add_argument("--force", action="store_true",
                       help="simulate even when the schedulability "
                            "lint finds the configuration infeasible "
                            "(SC errors normally abort before any "
                            "request is simulated)")
    serve.add_argument("--json", action="store_true",
                       help="emit serving metrics as JSON")

    cluster = sub.add_parser(
        "cluster",
        help="simulate a cluster of device pools behind a router, "
             "with replica placement and autoscaling")
    cluster.add_argument("--pool", action="append", dest="pools",
                         metavar="NAME:SOC:MAX[:MIN]",
                         help="one device pool (repeatable); MAX is "
                              "the replica ceiling, MIN the floor "
                              "(default pools: flagship:exynos7420:4 "
                              "and midrange:exynos7880:3)")
    cluster.add_argument("--scheduler", default="fifo",
                         choices=["fifo", "least-loaded", "edf",
                                  "batch"],
                         help="per-pool scheduling policy")
    cluster.add_argument("--router", default="round-robin",
                         choices=["round-robin", "p2c",
                                  "least-latency"],
                         help="routing policy in front of the pools")
    cluster.add_argument("--compare", action="store_true",
                         help="run every router policy on the same "
                              "trace and compare")
    cluster.add_argument("--models", default=None,
                         help="comma-separated model names "
                              "(default: the mini zoo)")
    cluster.add_argument("--requests", type=int, default=2000,
                         help="number of requests to simulate")
    cluster.add_argument("--seed", type=int, default=0,
                         help="workload/router seed")
    cluster.add_argument("--workload", default="diurnal",
                         choices=["poisson", "bursty", "diurnal",
                                  "flash-crowd"],
                         help="arrival process")
    cluster.add_argument("--trace", default=None, metavar="PATH",
                         help="load the workload from a JSON trace "
                              "file (overrides --workload)")
    cluster.add_argument("--rate", type=float, default=None,
                         help="offered load in requests/s (default: "
                              "70%% of the cluster's ceiling "
                              "capacity)")
    cluster.add_argument("--load", type=float, default=None,
                         help="offered load as a fraction of ceiling "
                              "capacity (overrides --rate)")
    cluster.add_argument("--slo-factor", type=float, default=8.0,
                         help="per-model SLO as a multiple of its "
                              "unloaded uLayer latency")
    cluster.add_argument("--max-batch", type=int, default=1,
                         metavar="N",
                         help="per-pool batch cap (batch/edf "
                              "schedulers)")
    cluster.add_argument("--batch-timeout-ms", type=float, default=10.0,
                         metavar="MS",
                         help="batch scheduler: partial-batch flush "
                              "window")
    cluster.add_argument("--autoscaler", default="off",
                         choices=["off", "reactive", "predictive"],
                         help="autoscaling mode")
    cluster.add_argument("--cold-start-ms", type=float, default=200.0,
                         metavar="MS",
                         help="delay before a scaled-up replica "
                              "serves its first request")
    cluster.add_argument("--replicas-per-model", type=int, default=None,
                         metavar="N",
                         help="spread each model over at most N pools "
                              "(default: every feasible pool)")
    cluster.add_argument("--tenants", default=None,
                         metavar="NAME:WEIGHT:PRIORITY,...",
                         help="tenant classes for trace workloads, "
                              "e.g. premium:1:0,standard:2:1 "
                              "(lower priority = more urgent)")
    cluster.add_argument("--jobs", type=int,
                         default=default_cli_jobs(), metavar="N",
                         help="warm placement plans with N processes "
                              "(default: CPU count capped at 8; "
                              "1 = serial)")
    cluster.add_argument("--force", action="store_true",
                         help="simulate even when the cluster "
                              "schedulability lint finds the "
                              "configuration infeasible (SC errors "
                              "normally abort with exit code 2 "
                              "before any request is simulated)")
    cluster.add_argument("--json", action="store_true",
                         help="emit cluster metrics as JSON")

    verify = sub.add_parser(
        "verify",
        help="statically verify plans, timelines, and dtype flow")
    verify.add_argument("model", nargs="?", default=None,
                        help="model name (omit with --all)")
    verify.add_argument("soc", nargs="?", default=None,
                        help="SoC name (default: every simulated SoC)")
    verify.add_argument("--mechanism", action="append",
                        dest="mechanisms", metavar="MECH",
                        choices=["mulayer", "l2p", "cpu", "gpu", "npu"],
                        help="mechanism to verify (repeatable; "
                             "default: all the SoC supports)")
    verify.add_argument("--all", action="store_true", dest="all_models",
                        help="verify every model in the zoo")
    verify.add_argument("--jobs", type=int,
                        default=default_cli_jobs(), metavar="N",
                        help="verify (soc, model) cells with N "
                             "processes (default: CPU count capped "
                             "at 8; 1 = serial)")
    verify.add_argument("--memory", action="store_true",
                        help="also check each plan's peak memory "
                             "footprint and arena layout against the "
                             "SoC's shared DRAM (MF rules)")
    verify.add_argument("--compiled", action="store_true",
                        help="also lower each plan into a compiled "
                             "program and prove it consistent with "
                             "the plan (PV012); builds models with "
                             "weights, so it is slow on the full-size "
                             "zoo")
    verify.add_argument("--batch", type=int, default=None, metavar="B",
                        help="batch size for the --memory analysis "
                             "(default: each plan's own batch)")
    verify.add_argument("--lint-src", nargs="?", const="src/repro",
                        default=None, metavar="PATH",
                        help="run the concurrency/determinism source "
                             "lint over PATH (default src/repro; CL "
                             "rules); usable without a model")
    verify.add_argument("--schedulability", action="store_true",
                        help="statically lint the serve configuration "
                             "implied by --devices/--load/--rate/"
                             "--slo-factor for the given models (SC "
                             "rules); usable without a model (lints "
                             "the mini zoo)")
    verify.add_argument("--devices", type=int, default=2,
                        help="--schedulability: fleet size")
    verify.add_argument("--rate", type=float, default=None,
                        help="--schedulability: offered load in "
                             "requests/s")
    verify.add_argument("--load", type=float, default=0.7,
                        help="--schedulability: offered load as a "
                             "fraction of fleet capacity (ignored "
                             "when --rate is given)")
    verify.add_argument("--slo-factor", type=float, default=4.0,
                        help="--schedulability: per-model SLO as a "
                             "multiple of unloaded uLayer latency")
    verify.add_argument("--max-batch", type=int, default=1,
                        metavar="N",
                        help="--schedulability: scheduler batch bound")
    verify.add_argument("--batch-timeout-ms", type=float, default=0.0,
                        metavar="MS",
                        help="--schedulability: batching flush "
                             "timeout")
    verify.add_argument("--sarif", default=None, metavar="PATH",
                        help="write all diagnostics as a SARIF 2.1.0 "
                             "log to PATH")
    verify.add_argument("--baseline", default=None, metavar="PATH",
                        help="suppress findings fingerprinted in this "
                             "baseline file (see lint-baseline.json)")
    verify.add_argument("--json", action="store_true",
                        help="emit diagnostics as JSON")

    figure = sub.add_parser("figure",
                            help="regenerate one paper figure")
    figure.add_argument("name", choices=_FIGURES)
    figure.add_argument("--jobs", type=int,
                        default=default_cli_jobs(), metavar="N",
                        help="generate (soc, model) cells with N "
                             "processes where the figure supports it "
                             "(default: CPU count capped at 8)")

    bench = sub.add_parser(
        "bench",
        help="wall-clock benchmark of functional execution and sweeps")
    bench.add_argument("--models", default=None,
                       help="comma-separated models; each entry may "
                            "be a glob over the registered zoo, e.g. "
                            "'*_mini' or 'vgg*' (default: the mini "
                            "zoo)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="warm inferences measured per model "
                            "(default 3)")
    bench.add_argument("--jobs", type=int,
                       default=default_cli_jobs(), metavar="N",
                       help="process count for the verify-sweep "
                            "timing (default: CPU count capped at 8; "
                            "1 = serial)")
    bench.add_argument("--output", default=None, metavar="PATH",
                       help="write the results as JSON to PATH "
                            "(e.g. BENCH_e2e.json)")
    bench.add_argument("--json", action="store_true",
                       help="print the results as JSON")
    bench.add_argument("--workers", type=int, default=None, metavar="N",
                       help="max worker count of the thread-parallel "
                            "compiled benchmark axis (default 4: "
                            "times workers 1, 2, and 4; 1 skips the "
                            "'parallel' block)")
    bench.add_argument("--compiled", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="benchmark the compiled fused execution "
                            "path against the warm functional path "
                            "and emit the 'compiled' block (default "
                            "on; --no-compiled skips it)")
    bench.add_argument("--autotune", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="benchmark the autotuned compiled path "
                            "against the untuned compiled baseline "
                            "and emit the 'autotuned' block (fresh "
                            "in-memory tuner, byte-identity asserted; "
                            "default on; requires --compiled; "
                            "--no-autotune skips it)")
    bench.add_argument("--serve-batch", action="store_true",
                       help="run the serving-throughput benchmark "
                            "instead: batch size x arrival rate sweep "
                            "under the dynamic batching scheduler "
                            "(simulated time; e.g. --output "
                            "BENCH_serve_batch.json)")
    bench.add_argument("--serve-requests", type=int, default=None,
                       metavar="N",
                       help="with --serve-batch: requests per sweep "
                            "cell (default 128)")
    bench.add_argument("--fleet", action="store_true",
                       help="run the fleet-scaling benchmark instead: "
                            "SLO attainment and p99 vs fleet size per "
                            "router policy on one fixed trace "
                            "(simulated time; e.g. --output "
                            "BENCH_fleet_scale.json)")
    bench.add_argument("--fleet-requests", type=int, default=None,
                       metavar="N",
                       help="with --fleet: requests in the reference "
                            "trace (default 100000)")
    return parser


def _cmd_list_models() -> int:
    for name in list_models():
        info = model_info(name)
        graph = build_model(name, with_weights=False)
        print(f"{name:18s} {info.display_name:22s} "
              f"{graph.total_macs() / 1e6:10.1f} MMACs  "
              f"{info.paper_class}")
    return 0


def _cmd_list_socs() -> int:
    for name, soc in sorted(SOCS.items()):
        processors = ", ".join(
            soc.processor(resource).name
            for resource in soc.resources())
        print(f"{name:16s} {soc.display_name}\n"
              f"{'':16s}   {processors}")
    return 0


def _make_tuner(args: argparse.Namespace):
    """The Tuner the --autotune flags ask for, or None."""
    if not getattr(args, "autotune", False):
        return None
    from .tune import TuneCache, Tuner, default_cache_path
    path = (args.tune_cache if args.tune_cache is not None
            else default_cache_path())
    return Tuner(cache=TuneCache(path),
                 allow_approx=args.allow_approx)


def _cmd_run(args: argparse.Namespace) -> int:
    soc = soc_by_name(args.soc)
    if args.compiled and args.mechanism != "mulayer":
        print("run: --compiled requires --mechanism mulayer",
              file=sys.stderr)
        return 2
    if args.autotune and not args.compiled:
        print("run: --autotune requires --compiled", file=sys.stderr)
        return 2
    graph = build_model(args.model, with_weights=args.compiled)
    compiled_info: Optional[Dict[str, object]] = None
    if args.mechanism == "mulayer":
        from .runtime.workers import default_workers
        workers = (default_workers() if args.workers is None
                   else args.workers)
        tuner = _make_tuner(args)
        runtime = MuLayer(soc, use_oracle_costs=args.oracle,
                          compiled=args.compiled, workers=workers,
                          tuner=tuner)
        if args.compiled:
            result, compiled_info = _run_compiled(runtime, graph)
            if tuner is not None:
                tuner.flush()
        else:
            result = runtime.run(graph)
        plan = runtime.plan(graph)
    elif args.mechanism == "l2p":
        result = run_layer_to_processor(soc, graph)
        plan = None
    else:
        result = run_single_processor(soc, graph, args.mechanism,
                                      parse_dtype(args.dtype))
        plan = None
    if args.json:
        payload = result.to_dict()
        if args.plan and plan is not None:
            payload["plan"] = {
                name: assignment.shares()
                for name, assignment in plan.assignments.items()}
        if compiled_info is not None:
            payload["compiled"] = compiled_info
        print(json.dumps(payload, indent=2))
        return 0 if (compiled_info is None
                     or compiled_info["byte_identical"]) else 1
    print(f"{args.model} on {soc.display_name} via {result.mechanism}:")
    print(f"  latency {result.latency_ms:10.3f} ms")
    print(f"  energy  {result.energy_mj:10.3f} mJ "
          f"(dynamic {result.energy.dynamic_j * 1e3:.1f}, "
          f"idle {result.energy.idle_j * 1e3:.1f}, "
          f"static {result.energy.static_j * 1e3:.1f}, "
          f"dram {result.energy.dram_j * 1e3:.1f})")
    print(f"  traffic {result.traffic_bytes / 1e6:10.3f} MB")
    if args.plan and plan is not None:
        print("\nexecution plan:")
        for name, assignment in plan.assignments.items():
            shares = ", ".join(f"{r}={s:.2f}"
                               for r, s in assignment.shares().items())
            print(f"  {name:30s} {shares}")
        for branch_assignment in plan.branch_assignments:
            region = branch_assignment.region
            print(f"  [branches {region.fork} -> {region.join}: "
                  f"{branch_assignment.mapping}]")
    if compiled_info is not None:
        identical = compiled_info["byte_identical"]
        steps = compiled_info["steps"]
        tuned = ", autotuned" if compiled_info.get("tuned") else ""
        print(f"\ncompiled program ({len(steps)} fused steps, arena "
              f"{compiled_info['arena_bytes']} bytes in "
              f"{compiled_info['arena_slots']} slots{tuned}):")
        for step in steps:
            where = "+".join(p["resource"]
                             for p in step["placements"]) or "-"
            print(f"  {step['layer']:24s} {step['kind']:15s} "
                  f"{step['variant']:12s} [{where}]")
        check = ("within tolerance of"
                 if compiled_info.get("allow_approx")
                 else "byte-identical to")
        print(f"  {check} the interpreter: {identical}")
    if args.gantt:
        from .harness import render_gantt
        print("\n" + render_gantt(result.timeline, width=100))
    if compiled_info is not None and not compiled_info["byte_identical"]:
        return 1
    return 0


def _run_compiled(runtime: MuLayer, graph
                  ) -> "tuple[object, Dict[str, object]]":
    """One compiled functional inference plus its identity check."""
    import numpy as np

    from .nn import calibrate_graph

    shape = graph.infer_shapes()[graph.input_layers()[0]]
    x = np.random.default_rng(0).standard_normal(shape).astype(
        np.float32)
    calibration = calibrate_graph(graph, [x])
    result = runtime.run(graph, x, calibration=calibration)
    reference = runtime.run(graph, x, calibration=calibration,
                            compiled=False)
    program = runtime.program(graph, calibration=calibration)
    if program.allow_approx:
        # Approximate variants (Winograd) are in play: the identity
        # bar relaxes to the tuner's own acceptance tolerance.
        identical = all(
            np.allclose(
                result.outputs[name].data.astype(np.float64),
                reference.outputs[name].data.astype(np.float64),
                rtol=1e-3, atol=1e-4)
            for name in reference.outputs)
    else:
        identical = all(
            result.outputs[name].data.tobytes()
            == reference.outputs[name].data.tobytes()
            for name in reference.outputs)
    info = program.describe()
    info["byte_identical"] = identical
    return result, info


def _cmd_compare(args: argparse.Namespace) -> int:
    from .harness import format_table
    from .tensor import DType
    soc = soc_by_name(args.soc)
    graph = build_model(args.model, with_weights=False)
    rows = []
    for resource, dtype in (("cpu", DType.F32), ("cpu", DType.QUINT8),
                            ("gpu", DType.F32), ("gpu", DType.F16)):
        result = run_single_processor(soc, graph, resource, dtype)
        rows.append([f"{resource}-{dtype}", result.latency_ms,
                     result.energy_mj])
    if soc.has_npu:
        result = run_single_processor(soc, graph, "npu", DType.QUINT8)
        rows.append(["npu-quint8", result.latency_ms, result.energy_mj])
    l2p = run_layer_to_processor(soc, graph)
    rows.append(["layer-to-processor", l2p.latency_ms, l2p.energy_mj])
    mulayer = MuLayer(soc).run(graph)
    rows.append(["ulayer", mulayer.latency_ms, mulayer.energy_mj])
    speedup = l2p.latency_s / mulayer.latency_s
    if args.json:
        print(json.dumps({
            "model": args.model,
            "soc": soc.name,
            "mechanisms": [
                {"mechanism": str(row[0]), "latency_ms": row[1],
                 "energy_mj": row[2]} for row in rows],
            "ulayer_speedup_over_l2p": speedup,
        }, indent=2))
        return 0
    print(format_table(["mechanism", "latency_ms", "energy_mj"], rows,
                       title=f"{args.model} on {soc.display_name}"))
    print(f"\nulayer speedup over layer-to-processor: "
          f"{speedup:.2f}x")
    return 0


def _schedulability_report(args: argparse.Namespace,
                           models: Optional[List[str]]):
    """SC-rule lint of the serve configuration the flags imply."""
    from .analysis import lint_serve_config
    from .models import MINI_MODELS
    from .serve import Fleet, ServeConfig, default_slos

    soc_names = [args.soc] if args.soc is not None else ["exynos7420"]
    chosen = list(models) if models else list(MINI_MODELS)
    fleet = Fleet.build(soc_names, args.devices)
    slos = default_slos(fleet, chosen, slo_factor=args.slo_factor)
    rate = (args.rate if args.rate is not None
            else args.load * fleet.capacity_rps(chosen))
    config = ServeConfig(
        models=tuple(chosen), soc_names=tuple(soc_names),
        num_devices=args.devices, rate_rps=rate, slos=slos,
        max_batch=args.max_batch,
        batch_timeout_s=args.batch_timeout_ms / 1e3)
    return lint_serve_config(config, fleet=fleet).sorted()


def _cmd_verify(args: argparse.Namespace) -> int:
    import dataclasses
    import pathlib

    from .analysis import (ConcurrencyLinter, Report, apply_baseline,
                           load_baseline, verify_sweep)

    standalone = args.lint_src is not None or args.schedulability
    if args.all_models:
        models: Optional[List[str]] = None
    elif args.model is not None:
        models = [args.model]
    elif standalone:
        models = []
    else:
        print("verify: give a model name or --all", file=sys.stderr)
        return 2
    socs = [args.soc] if args.soc is not None else None
    entries = []
    if models is None or models:
        entries = verify_sweep(models=models, socs=socs,
                               mechanisms=args.mechanisms,
                               jobs=args.jobs, memory=args.memory,
                               batch=args.batch,
                               compiled=args.compiled)
    lint_report = None
    if args.lint_src is not None:
        lint_report = ConcurrencyLinter().lint_paths(
            [args.lint_src]).sorted()
    sched_report = None
    if args.schedulability:
        sched_report = _schedulability_report(args, models)
    if args.baseline is not None:
        baseline = load_baseline(args.baseline)
        entries = [dataclasses.replace(
            entry, report=apply_baseline(entry.report, baseline))
            for entry in entries]
        if lint_report is not None:
            lint_report = apply_baseline(lint_report, baseline)
        if sched_report is not None:
            sched_report = apply_baseline(sched_report, baseline)
    if args.sarif is not None:
        merged = Report()
        for entry in entries:
            merged.extend(dataclasses.replace(
                diagnostic,
                locus=(f"{entry.model}/{entry.soc}/"
                       f"{entry.mechanism}:{diagnostic.locus}"))
                for diagnostic in entry.report)
        for extra in (lint_report, sched_report):
            if extra is not None:
                merged.extend(extra)
        pathlib.Path(args.sarif).write_text(
            merged.sorted().to_sarif() + "\n", encoding="utf-8")
    sweep_payload = [{"model": e.model, "soc": e.soc,
                      "mechanism": e.mechanism,
                      "diagnostics": [d.to_dict() for d in e.report]}
                     for e in entries]
    if args.json:
        if lint_report is None and sched_report is None:
            print(json.dumps(sweep_payload, indent=2))
        else:
            payload: Dict[str, object] = {"sweep": sweep_payload}
            if lint_report is not None:
                payload["lint"] = lint_report.to_dict()
            if sched_report is not None:
                payload["schedulability"] = sched_report.to_dict()
            print(json.dumps(payload, indent=2))
    else:
        for entry in entries:
            print(f"{entry.model:18s} {entry.soc:14s} "
                  f"{entry.mechanism:8s} {entry.report.summary()}")
            for diagnostic in entry.report:
                print(f"    {diagnostic.render()}")
        for title, extra in (("source lint", lint_report),
                             ("schedulability", sched_report)):
            if extra is None:
                continue
            print(f"{title}: {extra.summary()}")
            for diagnostic in extra:
                print(f"    {diagnostic.render()}")
    dirty = sum(1 for e in entries if not e.report.clean)
    dirty += sum(1 for extra in (lint_report, sched_report)
                 if extra is not None and not extra.clean)
    if not args.json:
        print(f"{len(entries)} mechanism runs verified, "
              f"{dirty} with diagnostics")
    return 1 if dirty else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .models import MINI_MODELS
    from .serve import (Fleet, PoissonWorkload, ServingMetrics,
                        ServingSimulator, bursty_for_rate, default_slos,
                        make_scheduler)

    from .runtime.plan_cache import PlanCache

    soc_names = args.socs or ["exynos7420"]
    models = (args.models.split(",") if args.models
              else list(MINI_MODELS))
    if args.autotune and not args.compiled:
        print("serve: --autotune requires --compiled",
              file=sys.stderr)
        return 2
    plan_cache = (PlanCache(max_entries=args.plan_cache_size)
                  if args.plan_cache_size is not None else None)
    tuner = _make_tuner(args)
    fleet = Fleet.build(soc_names, args.devices, plan_cache=plan_cache,
                        compiled=args.compiled, workers=args.workers,
                        tuner=tuner)
    batch_timeout_s = (args.batch_timeout_ms / 1e3
                       if args.batch_timeout_ms is not None else None)
    scheduler = make_scheduler(args.scheduler, max_batch=args.max_batch,
                               batch_timeout_s=batch_timeout_s)
    max_batch = getattr(scheduler, "max_batch", 1)
    if args.jobs is not None:
        fleet.warm_plans(models, jobs=args.jobs,
                         batches=tuple(range(1, max_batch + 1)),
                         programs=args.compiled)
        if tuner is not None:
            tuner.flush()
    slos = default_slos(fleet, models, slo_factor=args.slo_factor)
    capacity = fleet.capacity_rps(models)
    if args.load is not None:
        rate = args.load * capacity
    elif args.rate is not None:
        rate = args.rate
    else:
        rate = 0.7 * capacity
    # Static feasibility gate: an unschedulable configuration fails in
    # milliseconds here instead of after a full simulation.
    from .analysis import lint_serve_config
    from .serve import ServeConfig
    config = ServeConfig(
        models=tuple(models), soc_names=tuple(soc_names),
        num_devices=args.devices, rate_rps=rate, slos=slos,
        scheduler=args.scheduler, max_batch=max_batch,
        batch_timeout_s=getattr(scheduler, "batch_timeout_s", 0.0)
        or 0.0)
    feasibility = lint_serve_config(config, fleet=fleet).sorted()
    if not feasibility.clean and not args.json:
        print(f"schedulability: {feasibility.summary()}")
        for diagnostic in feasibility:
            print(f"    {diagnostic.render()}")
    if not feasibility.ok and not args.force:
        if args.json:
            print(json.dumps({
                "error": "configuration is not schedulable",
                "schedulability": feasibility.to_dict()}, indent=2))
        else:
            print("serve: configuration rejected before simulation "
                  "(rerun with --force to simulate anyway)",
                  file=sys.stderr)
        return 2
    from .serve import (WorkloadGenerator, diurnal_trace,
                        flash_crowd_trace, load_trace)
    workload: WorkloadGenerator
    if args.trace is not None:
        workload = load_trace(args.trace, slos, seed=args.seed)
    elif args.workload == "poisson":
        workload = PoissonWorkload(rate, models, slos, seed=args.seed)
    elif args.workload == "bursty":
        workload = bursty_for_rate(rate, models, slos, seed=args.seed)
    elif args.workload == "diurnal":
        workload = diurnal_trace(rate, models, slos, seed=args.seed)
    else:
        workload = flash_crowd_trace(rate, models, slos,
                                     seed=args.seed)
    requests = workload.generate(args.requests)
    result = ServingSimulator(fleet, scheduler).run(requests)
    metrics = ServingMetrics.from_result(result)
    if args.json:
        payload = metrics.to_dict()
        payload["config"] = {
            "socs": soc_names,
            "devices": args.devices,
            "models": models,
            "workload": (f"trace:{args.trace}" if args.trace
                         else args.workload),
            "rate_rps": rate,
            "capacity_rps": capacity,
            "slo_factor": args.slo_factor,
            "seed": args.seed,
            "plan_cache_size": args.plan_cache_size,
            "scheduler": scheduler.name,
            "max_batch": max_batch,
            "batch_timeout_s": getattr(scheduler, "batch_timeout_s",
                                       None),
        }
        payload["plan_cache"] = fleet.plan_cache.stats()
        if tuner is not None:
            payload["tune_cache"] = tuner.cache.stats()
        print(json.dumps(payload, indent=2))
        return 0
    device_names = ", ".join(d.device_id for d in fleet.devices)
    print(f"fleet: {device_names}")
    print(f"workload: {args.workload}, {len(requests)} requests at "
          f"{rate:.1f} rps (capacity ~{capacity:.1f} rps), seed "
          f"{args.seed}")
    print(f"slo: {args.slo_factor:.1f}x unloaded ulayer latency "
          "per model")
    print()
    print(metrics.render())
    return 0


#: Default cluster pools: a flagship pool next to a mid-range pool.
_DEFAULT_POOLS = ("flagship:exynos7420:4", "midrange:exynos7880:3")


def _parse_pool_specs(args: argparse.Namespace):
    """``NAME:SOC:MAX[:MIN]`` strings into :class:`PoolSpec` values."""
    from .cluster import PoolSpec
    specs = []
    for text in (args.pools or list(_DEFAULT_POOLS)):
        parts = text.split(":")
        if len(parts) < 2:
            raise SystemExit(
                f"cluster: bad --pool {text!r}; expected "
                "NAME:SOC:MAX[:MIN]")
        name, soc = parts[0], parts[1]
        max_replicas = int(parts[2]) if len(parts) > 2 else 2
        min_replicas = int(parts[3]) if len(parts) > 3 else 1
        specs.append(PoolSpec(
            name=name, soc=soc, max_replicas=max_replicas,
            min_replicas=min_replicas, scheduler=args.scheduler,
            max_batch=args.max_batch,
            batch_timeout_s=args.batch_timeout_ms / 1e3))
    return tuple(specs)


def _parse_tenants(text: Optional[str]):
    """``NAME:WEIGHT:PRIORITY,...`` into :class:`TenantClass` values."""
    if text is None:
        return None
    from .serve import TenantClass
    tenants = []
    for part in text.split(","):
        fields = part.split(":")
        if len(fields) != 3:
            raise SystemExit(
                f"cluster: bad --tenants entry {part!r}; expected "
                "NAME:WEIGHT:PRIORITY")
        tenants.append(TenantClass(name=fields[0],
                                   weight=float(fields[1]),
                                   priority=int(fields[2])))
    return tuple(tenants)


def _cluster_workload(args: argparse.Namespace, models: List[str],
                      slos, rate: float):
    """The workload generator the cluster flags select."""
    from .serve import (PoissonWorkload, bursty_for_rate,
                        diurnal_trace, flash_crowd_trace, load_trace)
    tenants = _parse_tenants(args.tenants)
    if args.trace is not None:
        return load_trace(args.trace, slos, seed=args.seed)
    if args.workload == "poisson":
        return PoissonWorkload(rate, models, slos, seed=args.seed)
    if args.workload == "bursty":
        return bursty_for_rate(rate, models, slos, seed=args.seed)
    if args.workload == "diurnal":
        return diurnal_trace(rate, models, slos, seed=args.seed,
                             tenants=tenants)
    return flash_crowd_trace(rate, models, slos, seed=args.seed,
                             tenants=tenants)


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .analysis import Report, lint_cluster_config
    from .cluster import (AutoscalerConfig, ClusterConfig,
                          ClusterMetrics, ClusterSimulator,
                          PlacementError, ROUTER_NAMES)
    from .models import MINI_MODELS
    from .serve import Fleet, default_slos

    pool_specs = _parse_pool_specs(args)
    models = (args.models.split(",") if args.models
              else list(MINI_MODELS))

    # SLOs and the capacity reference come from one probe fleet with a
    # device per pool SoC type (same predictor fits the pools reuse).
    probe = Fleet.build([spec.soc for spec in pool_specs],
                        len(pool_specs))
    slos = dict(default_slos(probe, models,
                             slo_factor=args.slo_factor))
    # Capacity reference: all-μLayer service at the replica count the
    # cluster can actually reach -- the autoscaler ceiling when
    # scaling is on, the fixed starting replicas when it is off.
    per_soc = {spec.soc: Fleet.build([spec.soc], 1).capacity_rps(models)
               for spec in pool_specs}
    capacity = sum(
        (spec.max_replicas if args.autoscaler != "off"
         else spec.start_replicas) * per_soc[spec.soc]
        for spec in pool_specs)
    if args.load is not None:
        rate = args.load * capacity
    elif args.rate is not None:
        rate = args.rate
    else:
        rate = 0.7 * capacity

    autoscaler = AutoscalerConfig(mode=args.autoscaler,
                                  cold_start_s=args.cold_start_ms / 1e3)
    config = ClusterConfig(
        pools=pool_specs, models=tuple(models), slos=slos,
        rate_rps=rate, router=args.router,
        replicas_per_model=args.replicas_per_model,
        autoscaler=autoscaler, seed=args.seed)

    # Static feasibility gate (SC006-SC008): an infeasible placement
    # or saturated cluster exits 2 before any request is simulated.
    try:
        simulator = ClusterSimulator(config, jobs=args.jobs)
    except PlacementError as error:
        feasibility = Report()
        feasibility.error("SC007", "placement", str(error))
        simulator = None
    else:
        feasibility = lint_cluster_config(config,
                                          pools=simulator.pools)
    feasibility = feasibility.sorted()
    if not feasibility.clean and not args.json:
        print(f"schedulability: {feasibility.summary()}")
        for diagnostic in feasibility:
            print(f"    {diagnostic.render()}")
    if simulator is None or (not feasibility.ok and not args.force):
        if args.json:
            print(json.dumps({
                "error": "cluster configuration is not schedulable",
                "schedulability": feasibility.to_dict()}, indent=2))
        else:
            print("cluster: configuration rejected before simulation "
                  "(rerun with --force to simulate anyway)",
                  file=sys.stderr)
        return 2

    requests = _cluster_workload(args, models, slos,
                                 rate).generate(args.requests)

    def run_one(router_name: str) -> ClusterMetrics:
        if router_name == config.router:
            sim = simulator
        else:
            import dataclasses
            sim = ClusterSimulator(
                dataclasses.replace(config, router=router_name),
                jobs=args.jobs)
        return ClusterMetrics.from_result(sim.run(requests))

    config_payload = config.to_dict()
    config_payload["capacity_rps"] = capacity
    config_payload["requests"] = args.requests
    config_payload["workload"] = (f"trace:{args.trace}" if args.trace
                                  else args.workload)

    if args.compare:
        by_router = {name: run_one(name) for name in ROUTER_NAMES}
        if args.json:
            print(json.dumps({
                "config": config_payload,
                "routers": {name: metrics.to_dict()
                            for name, metrics in by_router.items()},
            }, indent=2, sort_keys=True))
            return 0
        from .harness import format_table
        rows = [[name, metrics.throughput_rps, metrics.slo_attainment,
                 metrics.latency_p50_ms, metrics.latency_p99_ms,
                 float(metrics.num_shed),
                 float(metrics.scale_ups + metrics.scale_downs)]
                for name, metrics in by_router.items()]
        print(format_table(
            ["router", "req/s", "attainment", "p50_ms", "p99_ms",
             "shed", "scale_events"], rows,
            title=(f"router comparison, {args.requests} requests at "
                   f"{rate:.1f} rps")))
        return 0

    metrics = run_one(config.router)
    if args.json:
        payload = metrics.to_dict()
        payload["config"] = config_payload
        payload["placement"] = {
            model: list(hosts)
            for model, hosts in sorted(simulator.placement.items())}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    pool_names = ", ".join(
        f"{pool.name}({pool.spec.soc} x{pool.spec.max_replicas})"
        for pool in simulator.pools)
    print(f"pools: {pool_names}")
    print("placement: " + "; ".join(
        f"{model} -> {', '.join(hosts)}"
        for model, hosts in sorted(simulator.placement.items())))
    print(f"workload: {config_payload['workload']}, {args.requests} "
          f"requests at {rate:.1f} rps (ceiling capacity "
          f"~{capacity:.1f} rps), seed {args.seed}")
    print(f"autoscaler: {args.autoscaler}")
    print()
    print(metrics.render())
    return 0


def _cmd_figure(name: str, jobs: Optional[int] = None) -> int:
    from . import harness
    functions = {
        "fig05": harness.fig05_perlayer_vgg,
        "fig06": harness.fig06_nn_latency,
        "fig08": harness.fig08_quantization_latency,
        "fig10": harness.fig10_quantization_accuracy,
        "fig12": harness.fig12_branch_potential,
        "table1": harness.table1_applicability,
        "fig16": harness.fig16_e2e_latency,
        "fig17": harness.fig17_ablation,
        "fig18": harness.fig18_energy,
    }
    parallel = {"fig06", "fig08", "fig16", "fig17", "fig18"}
    if jobs is not None and name in parallel:
        print(functions[name](jobs=jobs).render())
    else:
        print(functions[name]().render())
    return 0


def _expand_model_globs(text: str) -> List[str]:
    """Comma-separated model names, each optionally a zoo glob."""
    import fnmatch
    registered = list_models()
    chosen: List[str] = []
    for pattern in text.split(","):
        if any(wildcard in pattern for wildcard in "*?["):
            matches = [name for name in registered
                       if fnmatch.fnmatchcase(name, pattern)]
            if not matches:
                raise SystemExit(
                    f"bench: --models pattern {pattern!r} matches no "
                    f"registered model (see list-models)")
            chosen.extend(name for name in matches
                          if name not in chosen)
        elif pattern not in chosen:
            chosen.append(pattern)
    return chosen


def _cmd_bench(args: argparse.Namespace) -> int:
    from .harness.bench import render_bench, run_bench
    models = _expand_model_globs(args.models) if args.models else None
    if args.fleet:
        from .harness.bench import render_fleet_bench, run_fleet_bench
        fleet_kwargs: Dict[str, object] = {}
        if models:
            fleet_kwargs["models"] = tuple(models)
        if args.fleet_requests is not None:
            fleet_kwargs["num_requests"] = args.fleet_requests
        results = run_fleet_bench(**fleet_kwargs)
        if args.output:
            with open(args.output, "w") as handle:
                json.dump(results, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if args.json:
            print(json.dumps(results, indent=2, sort_keys=True))
        else:
            print(render_fleet_bench(results))
        return 0
    if args.serve_batch:
        from .harness.bench import (render_serve_batch_bench,
                                    run_serve_batch_bench)
        serve_kwargs: Dict[str, object] = {}
        if models:
            serve_kwargs["model"] = models[0]
        if args.serve_requests is not None:
            serve_kwargs["num_requests"] = args.serve_requests
        results = run_serve_batch_bench(**serve_kwargs)
        if args.output:
            with open(args.output, "w") as handle:
                json.dump(results, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if args.json:
            print(json.dumps(results, indent=2, sort_keys=True))
        else:
            print(render_serve_batch_bench(results))
        return 0
    results = run_bench(models=models, repeats=args.repeats,
                        jobs=args.jobs, compiled=args.compiled,
                        workers=args.workers, autotune=args.autotune)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(results, indent=2, sort_keys=True))
    else:
        print(render_bench(results))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list-models":
        return _cmd_list_models()
    if args.command == "list-socs":
        return _cmd_list_socs()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "figure":
        return _cmd_figure(args.name, jobs=args.jobs)
    if args.command == "bench":
        return _cmd_bench(args)
    return 1


if __name__ == "__main__":
    sys.exit(main())
