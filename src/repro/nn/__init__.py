"""NN graph IR: layers, graphs, branch analysis, reference execution."""

from .branches import (BranchRegion, assert_region_partitions,
                       find_branch_regions)
from .graph import Graph
from .layer import (FILTER_SPLIT_KINDS, INPUT_SPLIT_KINDS, Layer, LayerKind,
                    LayerWork)
from .layers import (AvgPool2D, Concat, Conv2D, DepthwiseConv2D, EltwiseAdd,
                     Flatten, FullyConnected, GlobalAvgPool2D, Input, LRN,
                     MaxPool2D, ReLU, Softmax)
from .reference import calibrate_graph, reference_output, run_reference

__all__ = [
    "BranchRegion",
    "assert_region_partitions",
    "find_branch_regions",
    "Graph",
    "FILTER_SPLIT_KINDS",
    "INPUT_SPLIT_KINDS",
    "Layer",
    "LayerKind",
    "LayerWork",
    "AvgPool2D",
    "Concat",
    "Conv2D",
    "DepthwiseConv2D",
    "EltwiseAdd",
    "Flatten",
    "FullyConnected",
    "GlobalAvgPool2D",
    "Input",
    "LRN",
    "MaxPool2D",
    "ReLU",
    "Softmax",
    "calibrate_graph",
    "reference_output",
    "run_reference",
]
