"""The NN graph: a DAG of named layers.

Graphs are built layer by layer (:meth:`Graph.add`), validated for
structural soundness, scheduled topologically, and queried for shapes.
The branch-distribution mechanism additionally needs fork/join structure,
provided by :mod:`repro.nn.branches`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..errors import GraphError, ShapeError
from .layer import Layer, LayerKind, LayerWork, Shape
from .layers import Input


class Graph:
    """A directed acyclic graph of layers.

    Layers are identified by their unique names.  Edges point from a
    producer layer to each consumer that takes its output as input.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._layers: Dict[str, Layer] = {}
        self._inputs_of: Dict[str, List[str]] = {}
        self._consumers_of: Dict[str, List[str]] = {}
        self._order_cache: "List[str] | None" = None
        self._shape_cache: "Dict[str, Shape] | None" = None

    # -- construction ------------------------------------------------------

    def add(self, layer: Layer, inputs: Sequence[str] = ()) -> Layer:
        """Add ``layer``, wired to the named producer layers.

        Returns the layer for chaining convenience.

        Raises:
            GraphError: on duplicate names or unknown producers.
        """
        if layer.name in self._layers:
            raise GraphError(
                f"graph {self.name!r} already has a layer named "
                f"{layer.name!r}")
        for producer in inputs:
            if producer not in self._layers:
                raise GraphError(
                    f"layer {layer.name!r} consumes unknown layer "
                    f"{producer!r}")
        if isinstance(layer, Input) and inputs:
            raise GraphError(
                f"input layer {layer.name!r} cannot have producers")
        if not isinstance(layer, Input) and not inputs:
            raise GraphError(
                f"layer {layer.name!r} has no inputs; only Input layers "
                "may be sources")
        self._layers[layer.name] = layer
        self._inputs_of[layer.name] = list(inputs)
        self._consumers_of.setdefault(layer.name, [])
        for producer in inputs:
            self._consumers_of[producer].append(layer.name)
        self._order_cache = None
        self._shape_cache = None
        return layer

    # -- queries -----------------------------------------------------------

    def layer(self, name: str) -> Layer:
        """The layer named ``name``.

        Raises:
            GraphError: if no such layer exists.
        """
        try:
            return self._layers[name]
        except KeyError:
            raise GraphError(
                f"graph {self.name!r} has no layer named {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def __len__(self) -> int:
        return len(self._layers)

    def layers(self) -> Iterable[Layer]:
        """All layers in insertion order."""
        return self._layers.values()

    def layer_names(self) -> List[str]:
        """All layer names in insertion order."""
        return list(self._layers)

    def inputs_of(self, name: str) -> List[str]:
        """Names of the producers feeding ``name``."""
        self.layer(name)
        return list(self._inputs_of[name])

    def consumers_of(self, name: str) -> List[str]:
        """Names of the layers consuming ``name``'s output."""
        self.layer(name)
        return list(self._consumers_of[name])

    def input_layers(self) -> List[str]:
        """Names of all :class:`Input` layers."""
        return [name for name, layer in self._layers.items()
                if isinstance(layer, Input)]

    def output_layers(self) -> List[str]:
        """Names of all layers whose output nobody consumes."""
        return [name for name in self._layers
                if not self._consumers_of[name]]

    # -- structure ---------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Layer names in a producer-before-consumer order.

        Ties are broken by insertion order so the schedule is stable.

        Raises:
            GraphError: if the graph contains a cycle.
        """
        if self._order_cache is not None:
            return list(self._order_cache)
        in_degree = {name: len(inputs)
                     for name, inputs in self._inputs_of.items()}
        ready = [name for name in self._layers if in_degree[name] == 0]
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for consumer in self._consumers_of[name]:
                in_degree[consumer] -= 1
                if in_degree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._layers):
            stuck = sorted(set(self._layers) - set(order))
            raise GraphError(
                f"graph {self.name!r} contains a cycle involving {stuck}")
        self._order_cache = order
        return list(order)

    def validate(self) -> None:
        """Check structural soundness: acyclic, single component inputs,
        and consistent shapes throughout.

        Raises:
            GraphError / ShapeError: describing the first problem found.
        """
        if not self.input_layers():
            raise GraphError(f"graph {self.name!r} has no Input layer")
        self.topological_order()
        self.infer_shapes()

    def infer_shapes(self) -> Dict[str, Shape]:
        """Output shape of every layer, keyed by layer name."""
        if self._shape_cache is not None:
            return dict(self._shape_cache)
        shapes: Dict[str, Shape] = {}
        for name in self.topological_order():
            layer = self._layers[name]
            input_shapes = [shapes[producer]
                            for producer in self._inputs_of[name]]
            try:
                shapes[name] = layer.infer_shape(input_shapes)
            except ShapeError as exc:
                raise ShapeError(
                    f"graph {self.name!r}: shape inference failed at "
                    f"layer {name!r}: {exc}") from exc
        self._shape_cache = shapes
        return dict(shapes)

    # -- accounting ----------------------------------------------------------

    def layer_work(self, name: str) -> LayerWork:
        """Arithmetic work of one layer at the graph's inferred shapes."""
        shapes = self.infer_shapes()
        input_shapes = [shapes[p] for p in self._inputs_of[name]]
        return self.layer(name).work(input_shapes)

    def total_macs(self) -> int:
        """Total multiply-accumulates of one inference (batch 1)."""
        return sum(self.layer_work(name).macs
                   for name in self.topological_order()
                   if not isinstance(self._layers[name], Input))

    def total_params(self) -> int:
        """Total weight/bias elements across all layers."""
        return sum(self.layer_work(name).param_elements
                   for name in self.topological_order()
                   if not isinstance(self._layers[name], Input))

    def compute_layers(self) -> List[str]:
        """Names of all non-Input layers in topological order."""
        return [name for name in self.topological_order()
                if not isinstance(self._layers[name], Input)]

    def kinds_present(self) -> "set[LayerKind]":
        """The set of layer kinds the graph uses."""
        return {layer.kind for layer in self._layers.values()}

    def __repr__(self) -> str:
        return f"<Graph {self.name!r} with {len(self._layers)} layers>"
