"""Fork/join (divergent branch) detection.

Section 5 exploits NNs "consisting of branches which perform different
sequences of operations on the same input data" -- GoogLeNet's Inception
modules and SqueezeNet's Fire modules.  A *branch region* is a fork
layer whose output feeds several disjoint layer paths that reconverge at
a join layer (typically a channel concat).  Branch distribution assigns
whole branches to processors, so it needs these regions identified
precisely: branches must be disjoint and self-contained, otherwise
running them on different processors would race or deadlock.

The join of a fork is its immediate post-dominator in the DAG, computed
with the Cooper-Harvey-Kennedy algorithm on the reversed graph.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set

from ..errors import GraphError
from .graph import Graph

#: Name of the virtual exit node appended for post-dominator analysis.
_VIRTUAL_EXIT = "__exit__"


def _immediate_postdominators(graph: Graph) -> Dict[str, str]:
    """Immediate post-dominator of every layer.

    A virtual exit node is appended after all output layers so graphs
    with multiple outputs are handled uniformly.  The virtual exit
    post-dominates everything and is its own post-dominator.
    """
    order = graph.topological_order()
    # Reverse-topological processing order, with the virtual exit first.
    processing = [_VIRTUAL_EXIT] + list(reversed(order))
    index = {name: i for i, name in enumerate(processing)}

    def successors(name: str) -> List[str]:
        if name == _VIRTUAL_EXIT:
            return []
        consumers = graph.consumers_of(name)
        return consumers if consumers else [_VIRTUAL_EXIT]

    ipdom: Dict[str, Optional[str]] = {name: None for name in processing}
    ipdom[_VIRTUAL_EXIT] = _VIRTUAL_EXIT

    def intersect(a: str, b: str) -> str:
        # Walk up the post-dominator tree; smaller processing index means
        # closer to the exit.
        while a != b:
            while index[a] > index[b]:
                a = ipdom[a]  # type: ignore[assignment]
            while index[b] > index[a]:
                b = ipdom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for name in processing:
            if name == _VIRTUAL_EXIT:
                continue
            candidates = [s for s in successors(name)
                          if ipdom[s] is not None]
            if not candidates:
                continue
            new = candidates[0]
            for other in candidates[1:]:
                new = intersect(new, other)
            if ipdom[name] != new:
                ipdom[name] = new
                changed = True
    return {name: dom for name, dom in ipdom.items()
            if dom is not None and name != _VIRTUAL_EXIT}


@dataclasses.dataclass(frozen=True)
class BranchRegion:
    """A fork/join region with disjoint, self-contained branches.

    Attributes:
        fork: name of the layer whose output diverges.
        join: name of the layer where all branches reconverge.
        branches: per-branch layer names in topological order.  A branch
            may be empty when the fork feeds the join directly (an
            identity shortcut).
    """

    fork: str
    join: str
    branches: "tuple[tuple[str, ...], ...]"

    @property
    def layer_names(self) -> "tuple[str, ...]":
        """All branch-internal layer names (excludes fork and join)."""
        return tuple(name for branch in self.branches for name in branch)


def _reachable_from(graph: Graph, start: str) -> Set[str]:
    """All layers reachable downstream of ``start`` (exclusive)."""
    seen: Set[str] = set()
    frontier = list(graph.consumers_of(start))
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(graph.consumers_of(name))
    return seen


def _reaches(graph: Graph, target: str) -> Set[str]:
    """All layers that can reach ``target`` (exclusive)."""
    seen: Set[str] = set()
    frontier = list(graph.inputs_of(target))
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        frontier.extend(graph.inputs_of(name))
    return seen


def _branch_of(graph: Graph, fork: str, join: str, entry: str,
               topo_index: Dict[str, int]) -> "tuple[str, ...]":
    """Layers of the branch entered via ``entry``, in topological order."""
    if entry == join:
        return ()
    members = ({entry}
               | (_reachable_from(graph, entry) & _reaches(graph, join)))
    members.discard(join)
    members.discard(fork)
    return tuple(sorted(members, key=topo_index.__getitem__))


def find_branch_regions(graph: Graph) -> List[BranchRegion]:
    """All valid branch regions of ``graph``, in topological fork order.

    A region is valid for branch distribution when:

    * the fork has at least two consumers and an immediate
      post-dominator inside the graph (the join);
    * the branch layer sets are pairwise disjoint;
    * every branch layer's producers lie inside its branch or are the
      fork, and its consumers lie inside its branch or are the join
      (the region is self-contained, so branches can run concurrently
      with no cross-branch synchronization).
    """
    graph.topological_order()  # raises on cycles before analysis
    ipdom = _immediate_postdominators(graph)
    topo_index = {name: i for i, name in
                  enumerate(graph.topological_order())}
    regions: List[BranchRegion] = []
    for fork in graph.topological_order():
        consumers = graph.consumers_of(fork)
        if len(consumers) < 2:
            continue
        join = ipdom.get(fork)
        if join is None or join == _VIRTUAL_EXIT:
            continue
        branches = tuple(
            _branch_of(graph, fork, join, entry, topo_index)
            for entry in consumers)
        if _region_is_valid(graph, fork, join, branches):
            regions.append(BranchRegion(fork, join, branches))
    return regions


def _region_is_valid(graph: Graph, fork: str, join: str,
                     branches: "tuple[tuple[str, ...], ...]") -> bool:
    seen: Set[str] = set()
    for branch in branches:
        branch_set = set(branch)
        if branch_set & seen:
            return False  # branches overlap: not independently runnable
        seen |= branch_set
        for name in branch:
            for producer in graph.inputs_of(name):
                if producer != fork and producer not in branch_set:
                    return False
            for consumer in graph.consumers_of(name):
                if consumer != join and consumer not in branch_set:
                    return False
    # Every producer of the join must come from a branch or the fork.
    for producer in graph.inputs_of(join):
        if producer != fork and producer not in seen:
            return False
    return True


def region_subgraph(graph: Graph, region: BranchRegion) -> Graph:
    """A standalone graph of one fork/join region.

    The fork is replaced by an Input of the fork's output shape; the
    branch layers and the join are the original layer objects (layers
    are pure specifications, so sharing them between graphs is safe).
    Used to profile a region in isolation, the way the paper measures
    per-branch latencies on the device before deciding a mapping.
    """
    from .layers import Input as InputLayer

    shapes = graph.infer_shapes()
    sub = Graph(f"{graph.name}::{region.fork}")
    sub.add(InputLayer(region.fork, shapes[region.fork]))
    names = [name for branch in region.branches for name in branch]
    names.append(region.join)
    order = {name: i for i, name in
             enumerate(graph.topological_order())}
    for name in sorted(names, key=order.__getitem__):
        sub.add(graph.layer(name), graph.inputs_of(name))
    return sub


def assert_region_partitions(graph: Graph, region: BranchRegion) -> None:
    """Raise unless the region's branches partition the fork-join span.

    The span is the set of layers strictly between fork and join (every
    layer both reachable from the fork and reaching the join).  Used as
    a correctness invariant in tests.
    """
    span = ((_reachable_from(graph, region.fork)
             & _reaches(graph, region.join))
            - {region.fork, region.join})
    covered = set(region.layer_names)
    if covered != span:
        raise GraphError(
            f"branch region {region.fork!r}->{region.join!r} covers "
            f"{sorted(covered)} but the span is {sorted(span)}")
    total = sum(len(branch) for branch in region.branches)
    if total != len(covered):
        raise GraphError(
            f"branch region {region.fork!r}->{region.join!r} assigns a "
            "layer to more than one branch")
