"""Fully-connected (dense) layer."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...errors import ShapeError
from ...kernels import gemm_f32
from ..layer import Layer, LayerKind, LayerWork, Shape


class FullyConnected(Layer):
    """A dense layer: ``y = W x + b`` with optional fused ReLU.

    As Section 2.1 notes, an FC layer is a convolution whose output
    channel count equals its output neuron count; channel-wise workload
    distribution therefore splits its output neurons exactly like conv
    filters (Figure 7a).
    """

    kind = LayerKind.FC

    def __init__(self, name: str, in_features: int, out_features: int,
                 relu: bool = False) -> None:
        super().__init__(name)
        if min(in_features, out_features) < 1:
            raise ShapeError(
                f"fc {name!r}: feature counts must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.relu = relu
        self.weights: Optional[np.ndarray] = None  # (out, in) float32
        self.bias: Optional[np.ndarray] = None     # (out,) float32

    def set_weights(self, weights: np.ndarray, bias: np.ndarray) -> None:
        """Install float32 weights and bias, validating shapes."""
        expected = (self.out_features, self.in_features)
        if tuple(weights.shape) != expected:
            raise ShapeError(
                f"fc {self.name!r}: weights shape {weights.shape} != "
                f"{expected}")
        if tuple(bias.shape) != (self.out_features,):
            raise ShapeError(
                f"fc {self.name!r}: bias shape {bias.shape} != "
                f"({self.out_features},)")
        self.weights = np.asarray(weights, dtype=np.float32)
        self.bias = np.asarray(bias, dtype=np.float32)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        shape = self._expect_single_input(input_shapes)
        if len(shape) != 2:
            raise ShapeError(
                f"fc {self.name!r} expects flattened (batch, features) "
                f"input, got shape {shape}; insert a Flatten layer")
        batch, features = shape
        if features != self.in_features:
            raise ShapeError(
                f"fc {self.name!r}: input has {features} features, layer "
                f"expects {self.in_features}")
        return (batch, self.out_features)

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        if self.weights is None or self.bias is None:
            raise ShapeError(f"fc {self.name!r} has no weights")
        out = gemm_f32(x.astype(np.float32), self.weights.T, self.bias)
        if self.relu:
            out = np.maximum(out, 0.0)
        return out

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        self.infer_shape(input_shapes)
        macs = self.in_features * self.out_features
        simple = self.out_features if self.relu else 0
        return LayerWork(
            macs=macs,
            simple_ops=simple,
            param_elements=self.weights_count,
            input_elements=self.in_features,
            output_elements=self.out_features,
            parallel_channels=self.out_features,
        )

    @property
    def weights_count(self) -> int:
        """Number of weight + bias elements."""
        return self.in_features * self.out_features + self.out_features
