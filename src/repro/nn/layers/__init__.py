"""Concrete layer implementations."""

from .conv import Conv2D, DepthwiseConv2D
from .fc import FullyConnected
from .misc import (Concat, EltwiseAdd, Flatten, Input, LRN, ReLU, Softmax)
from .pool import AvgPool2D, GlobalAvgPool2D, MaxPool2D

__all__ = [
    "Conv2D",
    "DepthwiseConv2D",
    "FullyConnected",
    "Concat",
    "EltwiseAdd",
    "Flatten",
    "Input",
    "LRN",
    "ReLU",
    "Softmax",
    "AvgPool2D",
    "GlobalAvgPool2D",
    "MaxPool2D",
]
