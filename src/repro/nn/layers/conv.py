"""Convolutional layers (standard and depthwise)."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...errors import ShapeError
from ...kernels import conv_output_hw, flatten_filters, gemm_f32, im2col
from ..layer import Layer, LayerKind, LayerWork, Shape


class Conv2D(Layer):
    """A 2-D convolution with optional fused ReLU.

    Filters have shape ``(out_channels, in_channels, kernel, kernel)``
    and extend through all input channels (Figure 1b), which is why the
    channel-wise workload distribution can hand disjoint filter subsets
    to the CPU and the GPU while sharing the input (Figure 7a).
    """

    kind = LayerKind.CONV

    def __init__(self, name: str, in_channels: int, out_channels: int,
                 kernel: int, stride: int = 1, padding: int = 0,
                 relu: bool = False) -> None:
        super().__init__(name)
        if min(in_channels, out_channels, kernel, stride) < 1:
            raise ShapeError(
                f"conv {name!r}: channels, kernel, and stride must be "
                "positive")
        if padding < 0:
            raise ShapeError(f"conv {name!r}: padding must be >= 0")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.relu = relu
        self.weights: Optional[np.ndarray] = None  # (oc, ic, k, k) float32
        self.bias: Optional[np.ndarray] = None     # (oc,) float32

    def set_weights(self, weights: np.ndarray, bias: np.ndarray) -> None:
        """Install float32 weights and bias, validating shapes."""
        expected = (self.out_channels, self.in_channels, self.kernel,
                    self.kernel)
        if tuple(weights.shape) != expected:
            raise ShapeError(
                f"conv {self.name!r}: weights shape {weights.shape} != "
                f"{expected}")
        if tuple(bias.shape) != (self.out_channels,):
            raise ShapeError(
                f"conv {self.name!r}: bias shape {bias.shape} != "
                f"({self.out_channels},)")
        self.weights = np.asarray(weights, dtype=np.float32)
        self.bias = np.asarray(bias, dtype=np.float32)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        shape = self._expect_nchw(self._expect_single_input(input_shapes))
        batch, in_c, in_h, in_w = shape
        if in_c != self.in_channels:
            raise ShapeError(
                f"conv {self.name!r}: input has {in_c} channels, layer "
                f"expects {self.in_channels}")
        out_h, out_w = conv_output_hw(in_h, in_w, self.kernel, self.stride,
                                      self.padding)
        return (batch, self.out_channels, out_h, out_w)

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        if self.weights is None or self.bias is None:
            raise ShapeError(f"conv {self.name!r} has no weights")
        batch = x.shape[0]
        out_h, out_w = conv_output_hw(x.shape[2], x.shape[3], self.kernel,
                                      self.stride, self.padding)
        columns = im2col(x.astype(np.float32), self.kernel, self.stride,
                         self.padding)
        filters = flatten_filters(self.weights)  # (oc, ic*k*k)
        out = gemm_f32(columns.reshape(-1, columns.shape[-1]), filters.T,
                       self.bias)
        out = out.reshape(batch, out_h, out_w, self.out_channels)
        out = out.transpose(0, 3, 1, 2)
        if self.relu:
            out = np.maximum(out, 0.0)
        return np.ascontiguousarray(out)

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        out_shape = self.infer_shape(input_shapes)
        _, out_c, out_h, out_w = out_shape
        in_c = self.in_channels
        macs = out_h * out_w * out_c * in_c * self.kernel * self.kernel
        out_elements = out_c * out_h * out_w
        simple = out_elements if self.relu else 0
        in_shape = input_shapes[0]
        return LayerWork(
            macs=macs,
            simple_ops=simple,
            param_elements=self.weights_count,
            input_elements=int(np.prod(in_shape[1:])),
            output_elements=out_elements,
            parallel_channels=out_c,
        )

    @property
    def weights_count(self) -> int:
        """Number of weight + bias elements."""
        return (self.out_channels * self.in_channels * self.kernel
                * self.kernel + self.out_channels)


class DepthwiseConv2D(Layer):
    """A depthwise convolution: one ``k x k`` filter per channel.

    MobileNet v1's workhorse.  Each output channel depends only on the
    matching input channel, so cooperative execution splits the *input*
    channels (like pooling) rather than sharing the whole input.
    """

    kind = LayerKind.DEPTHWISE_CONV

    def __init__(self, name: str, channels: int, kernel: int,
                 stride: int = 1, padding: int = 0,
                 relu: bool = False) -> None:
        super().__init__(name)
        if min(channels, kernel, stride) < 1:
            raise ShapeError(
                f"depthwise conv {name!r}: channels, kernel, and stride "
                "must be positive")
        self.channels = channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.relu = relu
        self.weights: Optional[np.ndarray] = None  # (c, k, k)
        self.bias: Optional[np.ndarray] = None     # (c,)

    def set_weights(self, weights: np.ndarray, bias: np.ndarray) -> None:
        """Install float32 per-channel filters and bias."""
        expected = (self.channels, self.kernel, self.kernel)
        if tuple(weights.shape) != expected:
            raise ShapeError(
                f"depthwise conv {self.name!r}: weights shape "
                f"{weights.shape} != {expected}")
        if tuple(bias.shape) != (self.channels,):
            raise ShapeError(
                f"depthwise conv {self.name!r}: bias shape {bias.shape} "
                f"!= ({self.channels},)")
        self.weights = np.asarray(weights, dtype=np.float32)
        self.bias = np.asarray(bias, dtype=np.float32)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        shape = self._expect_nchw(self._expect_single_input(input_shapes))
        batch, in_c, in_h, in_w = shape
        if in_c != self.channels:
            raise ShapeError(
                f"depthwise conv {self.name!r}: input has {in_c} "
                f"channels, layer expects {self.channels}")
        out_h, out_w = conv_output_hw(in_h, in_w, self.kernel, self.stride,
                                      self.padding)
        return (batch, self.channels, out_h, out_w)

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        if self.weights is None or self.bias is None:
            raise ShapeError(f"depthwise conv {self.name!r} has no weights")
        batch, channels, in_h, in_w = x.shape
        out_h, out_w = conv_output_hw(in_h, in_w, self.kernel, self.stride,
                                      self.padding)
        # im2col per channel: treat each channel as its own 1-channel image.
        columns = im2col(
            x.astype(np.float32).reshape(batch * channels, 1, in_h, in_w),
            self.kernel, self.stride, self.padding)
        # columns: (batch*channels, out_h*out_w, k*k)
        filters = self.weights.reshape(channels, -1)  # (c, k*k)
        filters = np.tile(filters, (batch, 1))        # (batch*c, k*k)
        out = np.einsum("npk,nk->np", columns, filters)
        out = out.reshape(batch, channels, out_h, out_w)
        out = out + self.bias[None, :, None, None]
        if self.relu:
            out = np.maximum(out, 0.0)
        return out.astype(np.float32)

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        out_shape = self.infer_shape(input_shapes)
        _, out_c, out_h, out_w = out_shape
        macs = out_h * out_w * out_c * self.kernel * self.kernel
        out_elements = out_c * out_h * out_w
        simple = out_elements if self.relu else 0
        return LayerWork(
            macs=macs,
            simple_ops=simple,
            param_elements=self.weights_count,
            input_elements=int(np.prod(input_shapes[0][1:])),
            output_elements=out_elements,
            parallel_channels=out_c,
        )

    @property
    def weights_count(self) -> int:
        """Number of weight + bias elements."""
        return self.channels * self.kernel * self.kernel + self.channels
