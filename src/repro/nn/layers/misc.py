"""Structural and elementwise layers: input, flatten, relu, concat,
add, softmax, LRN."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ...errors import ShapeError
from ..layer import Layer, LayerKind, LayerWork, Shape


class Input(Layer):
    """The graph's entry point; carries the declared input shape."""

    kind = LayerKind.INPUT

    def __init__(self, name: str, shape: Shape) -> None:
        super().__init__(name)
        if any(dim < 1 for dim in shape):
            raise ShapeError(
                f"input {name!r}: all dimensions must be positive, got "
                f"{shape}")
        self.shape = tuple(shape)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if input_shapes:
            raise ShapeError(
                f"input layer {self.name!r} takes no inputs")
        return self.shape

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        raise ShapeError(
            f"input layer {self.name!r} is fed externally, not executed")

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        elements = int(np.prod(self.shape[1:]))
        return LayerWork(macs=0, simple_ops=0, param_elements=0,
                         input_elements=0, output_elements=elements)


class Flatten(Layer):
    """Collapse all non-batch dimensions into one feature axis."""

    kind = LayerKind.FLATTEN

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        shape = self._expect_single_input(input_shapes)
        return (shape[0], int(np.prod(shape[1:])))

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return np.ascontiguousarray(x.reshape(x.shape[0], -1))

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        elements = int(np.prod(input_shapes[0][1:]))
        return LayerWork(macs=0, simple_ops=0, param_elements=0,
                         input_elements=elements, output_elements=elements)


class ReLU(Layer):
    """Standalone rectified linear unit (usually fused into conv/FC)."""

    kind = LayerKind.RELU

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        return self._expect_single_input(input_shapes)

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return np.maximum(x, 0.0).astype(np.float32)

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        elements = int(np.prod(input_shapes[0][1:]))
        return LayerWork(macs=0, simple_ops=elements, param_elements=0,
                         input_elements=elements, output_elements=elements)


class Concat(Layer):
    """Concatenate along the channel axis.

    The join point of divergent branches: GoogLeNet's Inception module
    "concatenates the outcomes along the channel dimension" (Section 5).
    """

    kind = LayerKind.CONCAT

    def __init__(self, name: str, axis: int = 1) -> None:
        super().__init__(name)
        self.axis = axis

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise ShapeError(
                f"concat {self.name!r} needs at least two inputs")
        first = tuple(input_shapes[0])
        total = 0
        for shape in input_shapes:
            shape = tuple(shape)
            if len(shape) != len(first):
                raise ShapeError(
                    f"concat {self.name!r}: rank mismatch {shape} vs "
                    f"{first}")
            for axis, (a, b) in enumerate(zip(shape, first)):
                if axis != self.axis and a != b:
                    raise ShapeError(
                        f"concat {self.name!r}: non-concat dims differ: "
                        f"{shape} vs {first}")
            total += shape[self.axis]
        out = list(first)
        out[self.axis] = total
        return tuple(out)

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        return np.concatenate(inputs, axis=self.axis)

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        elements = sum(int(np.prod(shape[1:])) for shape in input_shapes)
        return LayerWork(macs=0, simple_ops=0, param_elements=0,
                         input_elements=elements, output_elements=elements)


class EltwiseAdd(Layer):
    """Elementwise addition of equally shaped inputs (residual links)."""

    kind = LayerKind.ADD

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise ShapeError(
                f"add {self.name!r} needs at least two inputs")
        first = tuple(input_shapes[0])
        for shape in input_shapes[1:]:
            if tuple(shape) != first:
                raise ShapeError(
                    f"add {self.name!r}: shape mismatch {shape} vs {first}")
        return first

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        out = inputs[0].astype(np.float32)
        for other in inputs[1:]:
            out = out + other
        return out

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        elements = int(np.prod(input_shapes[0][1:]))
        return LayerWork(macs=0,
                         simple_ops=elements * (len(input_shapes) - 1),
                         param_elements=0,
                         input_elements=elements * len(input_shapes),
                         output_elements=elements)


class Softmax(Layer):
    """Softmax over the feature axis of a (batch, features) tensor."""

    kind = LayerKind.SOFTMAX

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        shape = self._expect_single_input(input_shapes)
        if len(shape) != 2:
            raise ShapeError(
                f"softmax {self.name!r} expects (batch, features) input, "
                f"got shape {shape}")
        return shape

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        x = x.astype(np.float32)
        shifted = x - x.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return (exp / exp.sum(axis=1, keepdims=True)).astype(np.float32)

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        elements = int(np.prod(input_shapes[0][1:]))
        # exp + sum + divide: ~3 simple ops per element.
        return LayerWork(macs=0, simple_ops=3 * elements, param_elements=0,
                         input_elements=elements, output_elements=elements)


class LRN(Layer):
    """Local response normalization (AlexNet, GoogLeNet).

    Normalizes each activation by the sum of squares over ``size``
    adjacent channels: ``x / (k + alpha/size * sum)**beta``.
    """

    kind = LayerKind.LRN

    def __init__(self, name: str, size: int = 5, alpha: float = 1e-4,
                 beta: float = 0.75, k: float = 1.0) -> None:
        super().__init__(name)
        if size < 1:
            raise ShapeError(f"lrn {name!r}: size must be positive")
        self.size = size
        self.alpha = alpha
        self.beta = beta
        self.k = k

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        return self._expect_nchw(self._expect_single_input(input_shapes))

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        x = x.astype(np.float32)
        squared = x * x
        channels = x.shape[1]
        half = self.size // 2
        # Sum of squares over a sliding channel window via cumulative sums.
        padded = np.zeros(
            (x.shape[0], channels + 2 * half, x.shape[2], x.shape[3]),
            dtype=np.float32)
        padded[:, half:half + channels] = squared
        cumsum = np.cumsum(padded, axis=1)
        cumsum = np.concatenate(
            [np.zeros_like(cumsum[:, :1]), cumsum], axis=1)
        window = cumsum[:, self.size:] - cumsum[:, :-self.size]
        denom = (self.k + (self.alpha / self.size) * window) ** self.beta
        return (x / denom).astype(np.float32)

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        elements = int(np.prod(input_shapes[0][1:]))
        # square + windowed sum + pow + divide: ~(size + 3) ops/elem.
        return LayerWork(macs=0, simple_ops=(self.size + 3) * elements,
                         param_elements=0, input_elements=elements,
                         output_elements=elements)
