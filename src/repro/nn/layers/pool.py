"""Pooling layers (max, average, global average)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ...errors import ShapeError
from ...kernels import avg_pool, conv_output_hw, global_avg_pool, max_pool
from ..layer import Layer, LayerKind, LayerWork, Shape


class _Pool2D(Layer):
    """Shared implementation of spatial pooling layers."""

    def __init__(self, name: str, kernel: int, stride: int,
                 padding: int = 0) -> None:
        super().__init__(name)
        if min(kernel, stride) < 1:
            raise ShapeError(
                f"pool {name!r}: kernel and stride must be positive")
        if padding < 0:
            raise ShapeError(f"pool {name!r}: padding must be >= 0")
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        shape = self._expect_nchw(self._expect_single_input(input_shapes))
        batch, channels, in_h, in_w = shape
        out_h, out_w = conv_output_hw(in_h, in_w, self.kernel, self.stride,
                                      self.padding)
        return (batch, channels, out_h, out_w)

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        out_shape = self.infer_shape(input_shapes)
        _, out_c, out_h, out_w = out_shape
        out_elements = out_c * out_h * out_w
        return LayerWork(
            macs=0,
            simple_ops=out_elements * self.kernel * self.kernel,
            param_elements=0,
            input_elements=int(np.prod(input_shapes[0][1:])),
            output_elements=out_elements,
            parallel_channels=out_c,
        )


class MaxPool2D(_Pool2D):
    """Spatial max pooling; channel count is preserved (Section 2.1)."""

    kind = LayerKind.MAX_POOL

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return max_pool(x.astype(np.float32), self.kernel, self.stride,
                        self.padding)


class AvgPool2D(_Pool2D):
    """Spatial average pooling; channel count is preserved."""

    kind = LayerKind.AVG_POOL

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return avg_pool(x.astype(np.float32), self.kernel, self.stride,
                        self.padding)


class GlobalAvgPool2D(Layer):
    """Average over the full spatial extent (SqueezeNet/MobileNet head)."""

    kind = LayerKind.AVG_POOL

    def __init__(self, name: str) -> None:
        super().__init__(name)

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        shape = self._expect_nchw(self._expect_single_input(input_shapes))
        batch, channels, _, _ = shape
        return (batch, channels, 1, 1)

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        (x,) = inputs
        return global_avg_pool(x.astype(np.float32))

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        in_shape = self._expect_nchw(
            self._expect_single_input(input_shapes))
        _, channels, in_h, in_w = in_shape
        return LayerWork(
            macs=0,
            simple_ops=channels * in_h * in_w,
            param_elements=0,
            input_elements=channels * in_h * in_w,
            output_elements=channels,
            parallel_channels=channels,
        )
