"""Float32 reference execution of a graph.

The reference executor runs every layer's :meth:`forward_f32` in
topological order.  It is the accuracy baseline for all quantized paths
and doubles as the calibration driver: passing a
:class:`~repro.quant.calibrate.CalibrationTable` records every layer's
activation range while the batch flows through.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ShapeError
from ..quant.calibrate import CalibrationTable
from .graph import Graph
from .layers import Input


def run_reference(graph: Graph, inputs: Dict[str, np.ndarray],
                  calibration: Optional[CalibrationTable] = None
                  ) -> Dict[str, np.ndarray]:
    """Execute ``graph`` in float32 and return every layer's output.

    Args:
        graph: the network to execute.
        inputs: maps each Input layer's name to its batch data (NCHW or
            the layer's declared shape).
        calibration: optional table whose observers record each layer's
            output range (for post-training quantization).

    Returns:
        Mapping from layer name to its float32 output array, including
        the inputs themselves.

    Raises:
        ShapeError: if an input is missing or misshapen.
    """
    activations: Dict[str, np.ndarray] = {}
    shapes = graph.infer_shapes()
    for name in graph.topological_order():
        layer = graph.layer(name)
        if isinstance(layer, Input):
            if name not in inputs:
                raise ShapeError(f"missing data for input layer {name!r}")
            data = np.asarray(inputs[name], dtype=np.float32)
            if tuple(data.shape)[1:] != tuple(layer.shape)[1:]:
                raise ShapeError(
                    f"input {name!r} has shape {data.shape}, expected "
                    f"{layer.shape} (batch may differ)")
            activations[name] = data
        else:
            layer_inputs = [activations[p] for p in graph.inputs_of(name)]
            out = layer.forward_f32(layer_inputs)
            expected = shapes[name]
            if tuple(out.shape)[1:] != tuple(expected)[1:]:
                raise ShapeError(
                    f"layer {name!r} produced shape {out.shape}, shape "
                    f"inference promised {expected}")
            activations[name] = out
        if calibration is not None:
            calibration.observe(name, activations[name])
    return activations


def reference_output(graph: Graph, x: np.ndarray) -> np.ndarray:
    """Run a single-input, single-output graph and return its output."""
    input_names = graph.input_layers()
    output_names = graph.output_layers()
    if len(input_names) != 1 or len(output_names) != 1:
        raise ShapeError(
            f"graph {graph.name!r} is not single-input/single-output "
            f"({len(input_names)} inputs, {len(output_names)} outputs)")
    activations = run_reference(graph, {input_names[0]: x})
    return activations[output_names[0]]


def calibrate_graph(graph: Graph, batches: "list[np.ndarray]"
                    ) -> CalibrationTable:
    """Run calibration batches through ``graph`` and freeze the ranges.

    Returns a table with one frozen QuantParams entry per layer,
    covering the union of ranges seen across all batches.
    """
    input_names = graph.input_layers()
    if len(input_names) != 1:
        raise ShapeError(
            f"calibrate_graph needs a single-input graph, "
            f"{graph.name!r} has {len(input_names)}")
    table = CalibrationTable()
    for batch in batches:
        run_reference(graph, {input_names[0]: batch}, calibration=table)
    table.freeze()
    return table
