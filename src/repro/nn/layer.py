"""Layer base class and the work/cost abstraction.

A :class:`Layer` is a node of an NN graph (Section 2.1): it knows its
parameters, can infer its output shape from input shapes, can execute a
float32 reference forward pass, and can report how much arithmetic work
it performs.  The amount of work drives the SoC timing model; which
*kind* of work it is (multiply-accumulates vs. lightweight elementwise
ops) determines how each processor's throughput applies.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ShapeError

Shape = Tuple[int, ...]


class LayerKind(enum.Enum):
    """The operation a layer performs."""

    INPUT = "input"
    CONV = "conv"
    DEPTHWISE_CONV = "depthwise_conv"
    FC = "fc"
    MAX_POOL = "max_pool"
    AVG_POOL = "avg_pool"
    RELU = "relu"
    CONCAT = "concat"
    ADD = "add"
    SOFTMAX = "softmax"
    LRN = "lrn"
    FLATTEN = "flatten"

    def __str__(self) -> str:
        return self.value


#: Kinds whose output channels can be split across processors
#: (convolutional and FC layers distribute filters, Figure 7a).
FILTER_SPLIT_KINDS = frozenset({LayerKind.CONV, LayerKind.FC})

#: Kinds whose *input* is split because they apply a per-channel global
#: function (pooling layers, Figure 7b).  Depthwise convolution behaves
#: the same way: each output channel depends only on its input channel.
INPUT_SPLIT_KINDS = frozenset({
    LayerKind.MAX_POOL,
    LayerKind.AVG_POOL,
    LayerKind.DEPTHWISE_CONV,
    LayerKind.RELU,
})


@dataclasses.dataclass(frozen=True)
class LayerWork:
    """Arithmetic work of one layer at batch size 1.

    Attributes:
        macs: multiply-accumulate operations (the GEMM-shaped work).
        simple_ops: lightweight element operations (comparisons, adds,
            copies) such as pooling reductions and activations.
        param_elements: number of weight/bias elements the layer reads.
        input_elements: activation elements read.
        output_elements: activation elements written.
        parallel_channels: independent output channels the kernel
            exposes.  Mobile GPU convolution kernels parallelize over
            output channels, so a kernel with few channels cannot fill
            a wide GPU -- and channel-wise splitting *reduces* this
            width, which is exactly why whole-branch distribution can
            beat per-layer splitting on Inception-style modules
            (Section 5).
    """

    macs: int
    simple_ops: int
    param_elements: int
    input_elements: int
    output_elements: int
    parallel_channels: int = 1 << 20

    def scaled(self, fraction: float) -> "LayerWork":
        """Work of a ``fraction`` of this layer (channel-wise split).

        Used by the timing model to cost the CPU and GPU portions of a
        cooperatively executed layer.  Parameters scale with the split
        for filter-split layers because each processor only loads its
        own filters; the parallel channel width shrinks with the split
        as well.
        """
        return LayerWork(
            macs=int(round(self.macs * fraction)),
            simple_ops=int(round(self.simple_ops * fraction)),
            param_elements=int(round(self.param_elements * fraction)),
            input_elements=int(round(self.input_elements * fraction)),
            output_elements=int(round(self.output_elements * fraction)),
            parallel_channels=max(
                1, int(round(self.parallel_channels * fraction))),
        )

    def batched(self, batch: int) -> "LayerWork":
        """Work of the same layer over a batch of ``batch`` inputs.

        Arithmetic and activation traffic scale with the batch, while
        the parameters are read once per kernel regardless of batch
        size -- that amortization is what makes batched GEMM pay.  The
        parallel channel width is unchanged: batching adds GEMM *rows*,
        not output channels, so a narrow kernel stays narrow.

        ``batched(1)`` returns ``self`` unchanged, keeping the batch-1
        timing path bit-identical to the unbatched one.
        """
        if batch == 1:
            return self
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return LayerWork(
            macs=self.macs * batch,
            simple_ops=self.simple_ops * batch,
            param_elements=self.param_elements,
            input_elements=self.input_elements * batch,
            output_elements=self.output_elements * batch,
            parallel_channels=self.parallel_channels,
        )


class Layer:
    """Base class of all graph nodes.

    Subclasses must set :attr:`kind` and implement
    :meth:`infer_shape`, :meth:`forward_f32`, and :meth:`work`.
    """

    kind: LayerKind

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("layers require a non-empty name")
        self.name = name

    # -- interface --------------------------------------------------------

    def infer_shape(self, input_shapes: Sequence[Shape]) -> Shape:
        """Output shape given the input shapes (batch included)."""
        raise NotImplementedError

    def forward_f32(self, inputs: List[np.ndarray]) -> np.ndarray:
        """Reference float32 forward pass."""
        raise NotImplementedError

    def work(self, input_shapes: Sequence[Shape]) -> LayerWork:
        """Arithmetic work for the given input shapes (batch size 1)."""
        raise NotImplementedError

    # -- split capabilities ----------------------------------------------

    @property
    def splits_filters(self) -> bool:
        """True if cooperative execution splits this layer's filters."""
        return self.kind in FILTER_SPLIT_KINDS

    @property
    def splits_input(self) -> bool:
        """True if cooperative execution splits this layer's input."""
        return self.kind in INPUT_SPLIT_KINDS

    @property
    def supports_channel_split(self) -> bool:
        """True if the channel-wise workload distribution applies."""
        return self.splits_filters or self.splits_input

    # -- helpers ----------------------------------------------------------

    def _expect_single_input(self, input_shapes: Sequence[Shape]) -> Shape:
        if len(input_shapes) != 1:
            raise ShapeError(
                f"layer {self.name!r} ({self.kind}) expects exactly one "
                f"input, got {len(input_shapes)}")
        return tuple(input_shapes[0])

    def _expect_nchw(self, shape: Shape) -> Shape:
        if len(shape) != 4:
            raise ShapeError(
                f"layer {self.name!r} ({self.kind}) expects NCHW input, "
                f"got shape {shape}")
        return shape

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
