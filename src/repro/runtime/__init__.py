"""The uLayer runtime: planning, distribution, and execution."""

from .baselines import (ThroughputResult, layer_to_processor_plan,
                        run_layer_to_processor, run_network_to_processor,
                        run_single_processor, single_processor_plan)
from .branch_dist import (BranchProfile, best_branch_mapping,
                          estimate_mapping, profile_branches)
from .compute import LayerComputer
from .distribution import (channel_ranges, output_channels_of,
                           share_counts, split_conv_weights,
                           split_counts, split_depthwise_weights,
                           split_fc_weights, split_layer_work,
                           split_layer_work_shares)
from .executor import Executor
from .metrics import (InferenceResult, LayerTrace, geometric_mean,
                      speed_improvement)
from .mulayer import MuLayer, mulayer_ablation_stages
from .partitioner import Partitioner, PartitionerConfig
from .pfq import (PROCESSOR_FRIENDLY, QuantizationPolicy, UNIFORM_F16,
                  UNIFORM_F32, UNIFORM_QUINT8, uniform_policy)
from .plan import (BranchAssignment, ExecutionPlan, LayerAssignment,
                   Placement, SPLIT_CHOICES)
from .plan_cache import PlanCache, PlanKey
from .predictor import (DEFAULT_PROFILING_SEED, LatencyPredictor,
                        default_profiling_samples)
from .workers import Task, WorkerPool, default_workers

__all__ = [
    "ThroughputResult",
    "layer_to_processor_plan",
    "run_layer_to_processor",
    "run_network_to_processor",
    "run_single_processor",
    "single_processor_plan",
    "BranchProfile",
    "best_branch_mapping",
    "estimate_mapping",
    "profile_branches",
    "LayerComputer",
    "output_channels_of",
    "split_conv_weights",
    "split_counts",
    "split_depthwise_weights",
    "split_fc_weights",
    "split_layer_work",
    "split_layer_work_shares",
    "share_counts",
    "channel_ranges",
    "Executor",
    "InferenceResult",
    "LayerTrace",
    "geometric_mean",
    "speed_improvement",
    "MuLayer",
    "mulayer_ablation_stages",
    "Partitioner",
    "PartitionerConfig",
    "PROCESSOR_FRIENDLY",
    "QuantizationPolicy",
    "UNIFORM_F16",
    "UNIFORM_F32",
    "UNIFORM_QUINT8",
    "uniform_policy",
    "BranchAssignment",
    "ExecutionPlan",
    "LayerAssignment",
    "Placement",
    "SPLIT_CHOICES",
    "PlanCache",
    "PlanKey",
    "DEFAULT_PROFILING_SEED",
    "LatencyPredictor",
    "default_profiling_samples",
    "Task",
    "WorkerPool",
    "default_workers",
]
