"""The uLayer runtime facade.

Wires the three components of Figure 13 together: the **NN partitioner**
(with its **latency predictor**) builds an execution plan, and the
**NN executor** runs the plan on the simulated SoC.  Feature switches
reproduce the paper's ablation (Figure 17): channel-wise workload
distribution, processor-friendly quantization, and branch distribution
can each be enabled independently.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn import Graph
from ..quant.calibrate import CalibrationTable
from ..soc import SoCSpec
from .executor import Executor
from .metrics import InferenceResult
from .partitioner import Partitioner, PartitionerConfig
from .pfq import (PROCESSOR_FRIENDLY, QuantizationPolicy, UNIFORM_QUINT8)
from .plan import ExecutionPlan
from .plan_cache import PlanCache, PlanKey
from .predictor import LatencyPredictor


class MuLayer:
    """The full uLayer runtime for one SoC.

    Args:
        soc: the target SoC.
        policy: quantization policy; the paper's processor-friendly
            quantization by default, ``UNIFORM_QUINT8`` for the
            channel-distribution-only ablation stage.
        enable_channel_distribution: allow cooperative per-layer
            CPU+GPU splits (Section 3.2).
        enable_branch_distribution: allow parallel branch execution
            (Section 5).
        use_oracle_costs: plan with exact timing-model costs instead
            of the fitted latency predictor (ablation).
        zero_copy / async_issue: the Section 6 implementation
            optimizations (ablations flip them off).
        verify: run the static analyzers around every execution (see
            :class:`~repro.runtime.executor.Executor`).
        compiled: execute functional runs through the compiled fused
            program (byte-identical outputs, lower wall clock); the
            program is cached in the plan cache next to its plan and
            invalidated with it.
        plan_cache: an externally shared
            :class:`~repro.runtime.plan_cache.PlanCache` (the serving
            fleet passes one cache to many runtimes); a private cache
            is created when omitted.
        workers: worker threads for compiled functional execution
            (see :class:`~repro.runtime.executor.Executor`); ``None``
            or 1 keeps the serial loop.
        tuner: a :class:`~repro.tune.Tuner`; when set, compiled
            programs go through per-step kernel-variant autotuning.
    """

    def __init__(self, soc: SoCSpec,
                 policy: QuantizationPolicy = PROCESSOR_FRIENDLY,
                 enable_channel_distribution: bool = True,
                 enable_branch_distribution: bool = True,
                 use_oracle_costs: bool = False,
                 zero_copy: bool = True,
                 async_issue: bool = True,
                 verify: bool = False,
                 compiled: bool = False,
                 predictor: Optional[LatencyPredictor] = None,
                 plan_cache: Optional[PlanCache] = None,
                 workers: Optional[int] = None,
                 tuner=None) -> None:
        self.soc = soc
        self.policy = policy
        self.compiled = compiled
        self.tuner = tuner
        config = PartitionerConfig(
            enable_channel_distribution=enable_channel_distribution,
            enable_branch_distribution=enable_branch_distribution,
            use_oracle_costs=use_oracle_costs,
        )
        self.partitioner = Partitioner(soc, policy=policy, config=config,
                                       predictor=predictor)
        self.executor = Executor(soc, zero_copy=zero_copy,
                                 async_issue=async_issue, verify=verify,
                                 workers=workers, tuner=tuner)
        self.plan_cache = plan_cache if plan_cache is not None else (
            PlanCache())

    def _plan_key(self, graph: Graph, batch: int = 1) -> PlanKey:
        """The cache identity of this runtime's plan for ``graph``."""
        return PlanKey(model=graph.name, soc=self.soc.name,
                       mechanism="mulayer", policy=self.policy.name,
                       batch=batch)

    def plan(self, graph: Graph, batch: int = 1) -> ExecutionPlan:
        """The execution plan for ``graph`` (cached per configuration).

        Plans are cached per batch size: a batch-4 plan has its own
        split ratios and must never be served for a batch-1 request.
        """
        return self.plan_cache.get_or_build(
            self._plan_key(graph, batch),
            lambda: self.partitioner.plan(graph, batch=batch))

    def program(self, graph: Graph,
                calibration: Optional[CalibrationTable] = None,
                batch: int = 1):
        """The compiled program for ``graph`` (cached next to its plan).

        The program is keyed by the plan's cache identity plus the run
        batch, identity-validated against the graph's current weight
        arrays and the calibration table on every lookup, and dropped
        whenever its plan is replaced or evicted.
        """
        # Imported lazily: repro.compile imports the analysis package,
        # which imports this one.
        from ..compile import compile_program
        key = self._plan_key(graph, batch)
        plan = self.plan(graph, batch=batch)
        program = self.plan_cache.get_program(
            key, batch, graph=graph, calibration=calibration)
        if program is None or program.plan is not plan:
            program = compile_program(graph, plan,
                                      calibration=calibration,
                                      batch=batch, mechanism="mulayer",
                                      tuner=self.tuner)
            self.plan_cache.put_program(key, batch, program)
        return program

    def run(self, graph: Graph, x: Optional[np.ndarray] = None,
            calibration: Optional[CalibrationTable] = None,
            batch: Optional[int] = None,
            compiled: Optional[bool] = None) -> InferenceResult:
        """Plan (if needed) and execute one inference.

        Args:
            graph: the network.
            x: input batch for functional execution; omit for
                timing-only runs.
            calibration: activation ranges, required for functional
                runs under a quantized policy.
            batch: batch size to plan and time for; defaults to the
                leading dimension of ``x`` when data is given, else 1.
            compiled: override the runtime's ``compiled`` setting for
                this run.
        """
        if batch is None:
            batch = int(x.shape[0]) if x is not None else 1
        plan = self.plan(graph, batch=batch)
        use_compiled = self.compiled if compiled is None else compiled
        program = None
        if use_compiled and x is not None:
            program = self.program(graph, calibration=calibration,
                                   batch=batch)
        return self.executor.run(graph, plan, x=x,
                                 calibration=calibration,
                                 mechanism="mulayer", batch=batch,
                                 program=program)


def mulayer_ablation_stages(soc: SoCSpec,
                            use_oracle_costs: bool = False
                            ) -> "dict[str, MuLayer]":
    """The incremental configurations of Figure 17.

    Returns runtimes for:

    * ``"ch_dist"`` -- channel-wise distribution only (uniform QUInt8
      on both processors, no branch distribution);
    * ``"ch_dist+pfq"`` -- plus processor-friendly quantization;
    * ``"full"`` -- plus branch distribution (the complete uLayer).
    """
    return {
        "ch_dist": MuLayer(soc, policy=UNIFORM_QUINT8,
                           enable_branch_distribution=False,
                           use_oracle_costs=use_oracle_costs),
        "ch_dist+pfq": MuLayer(soc, policy=PROCESSOR_FRIENDLY,
                               enable_branch_distribution=False,
                               use_oracle_costs=use_oracle_costs),
        "full": MuLayer(soc, policy=PROCESSOR_FRIENDLY,
                        use_oracle_costs=use_oracle_costs),
    }
