"""Channel-wise workload distribution (Section 3.2).

The CPU and the GPU process *disjoint* sets of channels, so no
computation is duplicated:

* convolutional and FC layers distribute their **filters** -- the CPU
  computes output channels ``[0, c)`` and the GPU ``[c, total)`` from
  the *shared* input (Figure 7a);
* pooling (and depthwise convolution, whose channels are likewise
  independent) distributes the **input channels** (Figure 7b).

This module provides the arithmetic of that split: channel counts, the
per-processor :class:`~repro.nn.LayerWork` fractions the timing model
costs, and the weight slices the functional executor computes with.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from ..errors import PlanError
from ..nn import Graph, LayerWork
from ..nn.layers import Conv2D, DepthwiseConv2D, FullyConnected


def split_counts(total_channels: int, split: float) -> Tuple[int, int]:
    """Partition ``total_channels`` into (CPU, GPU) counts.

    The CPU receives ``round(split * total)`` channels.  For a strictly
    cooperative split (0 < p < 1) of at least two channels, both
    processors are guaranteed at least one channel so neither side
    degenerates to a no-op kernel.

    Raises:
        PlanError: if the split is outside [0, 1] or there are no
            channels to split.
    """
    if not 0.0 <= split <= 1.0:
        raise PlanError(f"split {split} outside [0, 1]")
    if total_channels < 1:
        raise PlanError("cannot split a layer with no channels")
    cpu = int(round(split * total_channels))
    cpu = max(0, min(total_channels, cpu))
    if 0.0 < split < 1.0 and total_channels >= 2:
        cpu = max(1, min(total_channels - 1, cpu))
    return cpu, total_channels - cpu


#: Canonical resource order for channel ranges: the CPU takes the
#: leading channels, the NPU the middle, the GPU the tail.
RESOURCE_ORDER = ("cpu", "npu", "gpu")


def share_counts(total_channels: int,
                 shares: "Mapping[str, float]") -> "Dict[str, int]":
    """Partition channels across processors by fractional shares.

    Shares must be positive and sum to 1 (within rounding).  Largest-
    remainder apportionment guarantees every participating processor
    at least one channel when enough channels exist.

    Raises:
        PlanError: on empty/invalid shares or too few channels.
    """
    active = [(resource, share) for resource, share in shares.items()
              if share > 0.0]
    if not active:
        raise PlanError("no processor has a positive share")
    total_share = sum(share for _, share in active)
    if abs(total_share - 1.0) > 1e-6:
        raise PlanError(f"shares sum to {total_share}, expected 1.0")
    if total_channels < len(active):
        raise PlanError(
            f"cannot split {total_channels} channels across "
            f"{len(active)} processors")
    ideal = {resource: share * total_channels
             for resource, share in active}
    counts = {resource: max(1, int(ideal[resource]))
              for resource, _ in active}
    # Distribute the remainder by largest fractional part.
    while sum(counts.values()) < total_channels:
        resource = max(active,
                       key=lambda item: ideal[item[0]]
                       - counts[item[0]])[0]
        counts[resource] += 1
    while sum(counts.values()) > total_channels:
        resource = min(active,
                       key=lambda item: ideal[item[0]]
                       - counts[item[0]])[0]
        if counts[resource] > 1:
            counts[resource] -= 1
        else:
            candidates = [r for r, _ in active if counts[r] > 1]
            counts[candidates[0]] -= 1
    return counts


def channel_ranges(total_channels: int, shares: "Mapping[str, float]"
                   ) -> "Dict[str, Tuple[int, int]]":
    """Contiguous [lo, hi) channel ranges per processor, in the
    canonical CPU -> NPU -> GPU order."""
    counts = share_counts(total_channels, shares)
    ranges: "Dict[str, Tuple[int, int]]" = {}
    cursor = 0
    for resource in RESOURCE_ORDER:
        if resource not in counts:
            continue
        ranges[resource] = (cursor, cursor + counts[resource])
        cursor += counts[resource]
    return ranges


def split_layer_work_shares(graph: Graph, layer_name: str,
                            shares: "Mapping[str, float]"
                            ) -> "Dict[str, LayerWork]":
    """Per-processor work of a layer split by fractional shares."""
    layer = graph.layer(layer_name)
    if not layer.supports_channel_split:
        raise PlanError(
            f"layer {layer_name!r} ({layer.kind}) does not support "
            "channel-wise distribution")
    shapes = graph.infer_shapes()
    input_shapes = [shapes[p] for p in graph.inputs_of(layer_name)]
    work = layer.work(input_shapes)
    total = output_channels_of(graph, layer_name)
    counts = share_counts(total, shares)
    result: "Dict[str, LayerWork]" = {}
    for resource, count in counts.items():
        fraction = count / total
        scaled = work.scaled(fraction)
        if layer.splits_filters:
            scaled = _with_input(scaled, work.input_elements)
        result[resource] = scaled
    return result


def output_channels_of(graph: Graph, layer_name: str) -> int:
    """Channel count along which a layer's workload is distributed."""
    shape = graph.infer_shapes()[layer_name]
    if len(shape) == 2:      # FC output: (batch, features)
        return shape[1]
    return shape[1]          # NCHW channel axis


def split_layer_work(graph: Graph, layer_name: str,
                     split: float) -> Tuple[LayerWork, LayerWork]:
    """Per-processor work of a cooperatively executed layer.

    Returns (cpu_work, gpu_work).  The exact channel counts (not the
    raw ratio) determine the fractions, so the timing model sees the
    same rounding the functional split does.

    For filter-split layers both processors read the *entire* input;
    for input-split layers each processor reads only its channel
    portion.
    """
    layer = graph.layer(layer_name)
    if not layer.supports_channel_split:
        raise PlanError(
            f"layer {layer_name!r} ({layer.kind}) does not support "
            "channel-wise distribution")
    shapes = graph.infer_shapes()
    input_shapes = [shapes[p] for p in graph.inputs_of(layer_name)]
    work = layer.work(input_shapes)
    total = output_channels_of(graph, layer_name)
    cpu_channels, gpu_channels = split_counts(total, split)
    cpu_fraction = cpu_channels / total
    gpu_fraction = gpu_channels / total
    cpu_work = work.scaled(cpu_fraction)
    gpu_work = work.scaled(gpu_fraction)
    if layer.splits_filters:
        # The input is shared: both processors read all of it.
        cpu_work = _with_input(cpu_work, work.input_elements)
        gpu_work = _with_input(gpu_work, work.input_elements)
    return cpu_work, gpu_work


def _with_input(work: LayerWork, input_elements: int) -> LayerWork:
    return LayerWork(macs=work.macs, simple_ops=work.simple_ops,
                     param_elements=work.param_elements,
                     input_elements=input_elements,
                     output_elements=work.output_elements,
                     parallel_channels=work.parallel_channels)


def split_conv_weights(layer: Conv2D, cpu_channels: int
                       ) -> Tuple[Tuple[np.ndarray, np.ndarray],
                                  Tuple[np.ndarray, np.ndarray]]:
    """Disjoint filter subsets of a conv layer: (CPU, GPU) pairs of
    (weights, bias).  The CPU takes output channels [0, cpu_channels)."""
    if layer.weights is None or layer.bias is None:
        raise PlanError(f"conv {layer.name!r} has no weights to split")
    return ((layer.weights[:cpu_channels], layer.bias[:cpu_channels]),
            (layer.weights[cpu_channels:], layer.bias[cpu_channels:]))


def split_fc_weights(layer: FullyConnected, cpu_channels: int
                     ) -> Tuple[Tuple[np.ndarray, np.ndarray],
                                Tuple[np.ndarray, np.ndarray]]:
    """Disjoint output-neuron subsets of an FC layer."""
    if layer.weights is None or layer.bias is None:
        raise PlanError(f"fc {layer.name!r} has no weights to split")
    return ((layer.weights[:cpu_channels], layer.bias[:cpu_channels]),
            (layer.weights[cpu_channels:], layer.bias[cpu_channels:]))


def split_depthwise_weights(layer: DepthwiseConv2D, cpu_channels: int
                            ) -> Tuple[Tuple[np.ndarray, np.ndarray],
                                       Tuple[np.ndarray, np.ndarray]]:
    """Disjoint channel subsets of a depthwise conv's filters."""
    if layer.weights is None or layer.bias is None:
        raise PlanError(
            f"depthwise conv {layer.name!r} has no weights to split")
    return ((layer.weights[:cpu_channels], layer.bias[:cpu_channels]),
            (layer.weights[cpu_channels:], layer.bias[cpu_channels:]))
