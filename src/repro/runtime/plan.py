"""Execution plans: where each layer runs and with what split ratio.

The NN partitioner (Section 6) produces an :class:`ExecutionPlan` that
the NN executor consumes.  A plan assigns every compute layer either to
a single processor, to cooperative CPU+GPU execution with a split ratio
``p`` (the CPU's share of output channels), or to a branch-distributed
region where whole branches run on single processors in parallel.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Tuple

from ..errors import PlanError
from ..nn import BranchRegion, Graph
from .pfq import QuantizationPolicy

#: The split ratios the paper's NN partitioner considers (Section 6),
#: plus the single-processor endpoints.
SPLIT_CHOICES = (0.0, 0.25, 0.5, 0.75, 1.0)


class Placement(enum.Enum):
    """Where a layer executes."""

    CPU = "cpu"
    GPU = "gpu"
    NPU = "npu"
    COOPERATIVE = "cooperative"

    def __str__(self) -> str:
        return self.value


@dataclasses.dataclass(frozen=True)
class LayerAssignment:
    """Placement of one layer.

    Attributes:
        layer: the layer's name.
        placement: CPU, GPU, NPU, or cooperative.
        split: the CPU's share ``p`` of output channels.
        npu_split: the NPU's share of output channels (Section 8.3's
            three-way extension); the GPU receives the remainder
            ``1 - split - npu_split``.  Always 0.0 on NPU-less SoCs.
    """

    layer: str
    placement: Placement
    split: float
    npu_split: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.split <= 1.0:
            raise PlanError(
                f"layer {self.layer!r}: split {self.split} outside [0, 1]")
        if not 0.0 <= self.npu_split <= 1.0:
            raise PlanError(
                f"layer {self.layer!r}: npu_split {self.npu_split} "
                "outside [0, 1]")
        if self.split + self.npu_split > 1.0 + 1e-9:
            raise PlanError(
                f"layer {self.layer!r}: shares exceed 1.0 "
                f"(cpu {self.split} + npu {self.npu_split})")
        if self.placement is Placement.CPU and (self.split != 1.0
                                                or self.npu_split != 0.0):
            raise PlanError(
                f"layer {self.layer!r}: CPU placement requires "
                "split=1.0, npu_split=0.0")
        if self.placement is Placement.GPU and (self.split != 0.0
                                                or self.npu_split != 0.0):
            raise PlanError(
                f"layer {self.layer!r}: GPU placement requires "
                "split=0.0, npu_split=0.0")
        if self.placement is Placement.NPU and (self.split != 0.0
                                                or self.npu_split != 1.0):
            raise PlanError(
                f"layer {self.layer!r}: NPU placement requires "
                "split=0.0, npu_split=1.0")
        if self.placement is Placement.COOPERATIVE:
            shares = [share for share in (self.split, self.npu_split,
                                          self.gpu_split)
                      if share > 0.0]
            if len(shares) < 2:
                raise PlanError(
                    f"layer {self.layer!r}: cooperative placement needs "
                    "at least two processors with non-zero shares")

    @property
    def gpu_split(self) -> float:
        """The GPU's share of output channels."""
        if self.placement is Placement.CPU:
            return 0.0
        if self.placement is Placement.GPU:
            return 1.0
        if self.placement is Placement.NPU:
            return 0.0
        return max(0.0, 1.0 - self.split - self.npu_split)

    def shares(self) -> "dict[str, float]":
        """Non-zero channel shares keyed by resource name."""
        all_shares = {"cpu": self.split, "npu": self.npu_split,
                      "gpu": self.gpu_split}
        return {resource: share
                for resource, share in all_shares.items() if share > 0.0}

    @property
    def uses_cpu(self) -> bool:
        """True when any portion of the layer runs on the CPU."""
        return self.split > 0.0

    @property
    def uses_gpu(self) -> bool:
        """True when any portion of the layer runs on the GPU."""
        return self.gpu_split > 0.0

    @property
    def uses_npu(self) -> bool:
        """True when any portion of the layer runs on the NPU."""
        return (self.npu_split > 0.0
                or self.placement is Placement.NPU)

    @staticmethod
    def on_cpu(layer: str) -> "LayerAssignment":
        """Whole layer on the CPU."""
        return LayerAssignment(layer, Placement.CPU, 1.0)

    @staticmethod
    def on_gpu(layer: str) -> "LayerAssignment":
        """Whole layer on the GPU."""
        return LayerAssignment(layer, Placement.GPU, 0.0)

    @staticmethod
    def on_npu(layer: str) -> "LayerAssignment":
        """Whole layer on the NPU."""
        return LayerAssignment(layer, Placement.NPU, 0.0, npu_split=1.0)

    @staticmethod
    def cooperative(layer: str, split: float,
                    npu_split: float = 0.0) -> "LayerAssignment":
        """Layer split across processors: CPU gets ``split``, the NPU
        gets ``npu_split``, the GPU the remainder."""
        return LayerAssignment(layer, Placement.COOPERATIVE, split,
                               npu_split=npu_split)


@dataclasses.dataclass(frozen=True)
class BranchAssignment:
    """A branch-distributed fork/join region.

    Attributes:
        region: the fork/join structure.
        mapping: one ``"cpu"``/``"gpu"`` entry per branch, aligned with
            ``region.branches``.
    """

    region: BranchRegion
    mapping: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.mapping) != len(self.region.branches):
            raise PlanError(
                f"region {self.region.fork!r}->{self.region.join!r}: "
                f"{len(self.mapping)} placements for "
                f"{len(self.region.branches)} branches")
        for target in self.mapping:
            if target not in ("cpu", "gpu", "npu"):
                raise PlanError(
                    f"branch placement must be 'cpu', 'gpu', or 'npu', "
                    f"got {target!r}")

    def placement_of(self, layer: str) -> str:
        """``"cpu"``/``"gpu"`` placement of a layer inside the region.

        Raises:
            PlanError: if the layer is not part of the region.
        """
        for branch, target in zip(self.region.branches, self.mapping):
            if layer in branch:
                return target
        raise PlanError(
            f"layer {layer!r} is not inside region "
            f"{self.region.fork!r}->{self.region.join!r}")


@dataclasses.dataclass
class ExecutionPlan:
    """A complete execution recipe for one graph on one SoC.

    Attributes:
        graph_name: the graph this plan was built for.
        policy: the quantization policy in force.
        assignments: per-layer placement for every compute layer that
            is *not* inside a branch-distributed region.
        branch_assignments: branch-distributed regions, in topological
            fork order; their internal layers must not appear in
            ``assignments``.
        batch: the batch size the plan was partitioned for.  One batch
            size per plan -- every placement in the plan was chosen for
            (and is timed at) this batch; the executor refuses to run a
            batch-B plan at a different batch unless B == 1 (a batch-1
            plan may be reused at any batch, its split ratios are then
            merely suboptimal, not wrong).
    """

    graph_name: str
    policy: QuantizationPolicy
    assignments: Dict[str, LayerAssignment]
    branch_assignments: List[BranchAssignment] = dataclasses.field(
        default_factory=list)
    batch: int = 1

    def validate(self, graph: Graph) -> None:
        """Check the plan covers the graph exactly once.

        Raises:
            PlanError: if a compute layer is unassigned, doubly
                assigned, or unknown, or the batch size is invalid.
        """
        if graph.name != self.graph_name:
            raise PlanError(
                f"plan for {self.graph_name!r} applied to graph "
                f"{graph.name!r}")
        if not isinstance(self.batch, int) or isinstance(self.batch, bool) \
                or self.batch < 1:
            raise PlanError(
                f"plan batch must be a positive integer, got "
                f"{self.batch!r}")
        branch_layers = set()
        for branch_assignment in self.branch_assignments:
            for name in branch_assignment.region.layer_names:
                if name in branch_layers:
                    raise PlanError(
                        f"layer {name!r} appears in two branch regions")
                branch_layers.add(name)
        compute = set(graph.compute_layers())
        assigned = set(self.assignments)
        unknown = (assigned | branch_layers) - compute
        if unknown:
            raise PlanError(
                f"plan assigns layers not in the graph: {sorted(unknown)}")
        overlap = assigned & branch_layers
        if overlap:
            raise PlanError(
                f"layers assigned both individually and via branches: "
                f"{sorted(overlap)}")
        missing = compute - assigned - branch_layers
        if missing:
            raise PlanError(
                f"plan leaves layers unassigned: {sorted(missing)}")

    def placement_of(self, layer: str) -> "LayerAssignment | str":
        """The assignment of ``layer`` (branch placements come back as
        plain ``"cpu"``/``"gpu"`` strings)."""
        if layer in self.assignments:
            return self.assignments[layer]
        for branch_assignment in self.branch_assignments:
            if layer in branch_assignment.region.layer_names:
                return branch_assignment.placement_of(layer)
        raise PlanError(f"layer {layer!r} is not covered by this plan")

    def cooperative_layers(self) -> List[str]:
        """Names of all layers with cooperative placement."""
        return [name for name, a in self.assignments.items()
                if a.placement is Placement.COOPERATIVE]
