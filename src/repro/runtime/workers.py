"""A persistent help-run worker pool for thread-parallel execution.

The compiled execution path converts the paper's *modeled* overlap --
cooperative channel slices and parallel inception branches -- into
*measured* overlap by running ready steps of a
:class:`~repro.compile.dag.StepDag` on real threads.  NumPy's BLAS and
the fused integer kernels release the GIL, so a plain
:class:`threading.Thread` pool scales on multi-core hosts without any
multiprocessing serialization.

Two properties distinguish this pool from
:class:`concurrent.futures.ThreadPoolExecutor`:

* **help-run groups** (:meth:`WorkerPool.run_group`): a task running
  *on a pool worker* may fan sub-tasks (the cooperative placement
  parts of one layer) back into the same pool and wait for them.  The
  waiting thread claims and runs its own still-unclaimed sub-tasks
  inline, so a full pool can never deadlock on nested fan-out: every
  sub-task is either executed by another worker (and sub-tasks are
  leaves -- they never block) or by the waiter itself.
* **BLAS single-thread guard**: each worker thread holds the process's
  BLAS thread pools at one thread while the pool is alive (via
  ``threadpoolctl`` when installed; a documented no-op otherwise), so
  ``workers`` pool threads do not each spawn a full BLAS team and
  oversubscribe the cores.  Determinism does not depend on the guard:
  byte-identity across worker counts comes from issuing the exact same
  kernel calls on the exact same operand shapes and joining parts at
  fixed concatenation offsets (see DESIGN.md section 10).

Results are deterministic by construction, never by scheduling: the
pool guarantees each task runs exactly once and completion is awaited,
nothing more.  Callers must make every reduction point order-fixed.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Callable, List, Optional, Sequence

#: The CLI default: one worker per core, capped where mobile SoCs cap
#: their big cores (and where the paper's CPU+GPU+NPU story tops out).
_DEFAULT_WORKER_CAP = 4


def default_workers() -> int:
    """``min(os.cpu_count(), 4)``, at least 1 -- the CLI default."""
    return max(1, min(os.cpu_count() or 1, _DEFAULT_WORKER_CAP))


class _BlasLimit:
    """Best-effort single-thread BLAS limit for the pool's lifetime.

    Uses :mod:`threadpoolctl` when available; otherwise a no-op (the
    container images this repo targets often lack it, and BLAS thread
    counts cannot be changed via environment variables after the
    library has initialized).  CI additionally pins
    ``OMP_NUM_THREADS``/``OPENBLAS_NUM_THREADS`` at the process level
    for the parallel jobs, which makes the guard redundant there.
    """

    def __init__(self) -> None:
        self._controller: Optional[object] = None

    def acquire(self) -> None:
        if self._controller is not None:
            return
        try:
            import threadpoolctl
        except ImportError:
            return
        try:
            self._controller = threadpoolctl.threadpool_limits(
                limits=1, user_api="blas")
        except Exception:   # pragma: no cover - defensive
            self._controller = None

    def release(self) -> None:
        controller = self._controller
        self._controller = None
        if controller is None:
            return
        try:
            controller.restore_original_limits()  # type: ignore[attr-defined]
        except Exception:   # pragma: no cover - defensive
            pass


class Task:
    """One unit of pool work: a zero-argument callable plus its fate."""

    __slots__ = ("fn", "result", "error", "claimed", "_done")

    def __init__(self, fn: Callable[[], object]) -> None:
        self.fn = fn
        self.result: object = None
        self.error: Optional[BaseException] = None
        self.claimed = False
        self._done = threading.Event()

    @property
    def done(self) -> bool:
        """True once the task has finished (successfully or not)."""
        return self._done.is_set()

    def wait(self) -> None:
        """Block until the task has finished."""
        self._done.wait()

    def execute(self) -> None:
        """Run the task on the calling thread (claim must be held)."""
        try:
            self.result = self.fn()
        except BaseException as exc:   # noqa: BLE001 - repropagated
            self.error = exc
        finally:
            self._done.set()


class WorkerPool:
    """A persistent pool of ``workers`` daemon threads.

    Args:
        workers: number of worker threads (>= 1).  Threads start
            lazily on first submission and idle between runs, so a
            pool held by a long-lived :class:`~repro.runtime.executor.
            Executor` or serving fleet costs nothing while quiescent.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._queue: "deque[Task]" = deque()
        self._threads: List[threading.Thread] = []
        self._local = threading.local()
        self._blas = _BlasLimit()
        self._closed = False

    # -- introspection -------------------------------------------------------

    def current_worker(self) -> Optional[int]:
        """Index of the pool worker running the calling thread.

        ``None`` when called from a thread outside the pool (e.g. the
        coordinating caller of :meth:`run_group`).  Per-worker scratch
        buffers key off this index.
        """
        return getattr(self._local, "worker", None)

    # -- submission ----------------------------------------------------------

    def _ensure_threads(self) -> None:
        """Start missing worker threads (caller holds the lock)."""
        if not self._threads:
            self._blas.acquire()
        while len(self._threads) < self.workers:
            index = len(self._threads)
            thread = threading.Thread(
                target=self._worker_loop, args=(index,),
                name=f"repro-worker-{index}", daemon=True)
            self._threads.append(thread)
            thread.start()

    def submit(self, fn: Callable[[], object]) -> Task:
        """Enqueue one task for the workers; returns its handle."""
        task = Task(fn)
        with self._available:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._ensure_threads()
            self._queue.append(task)
            self._available.notify()
        return task

    def run_group(self, fns: Sequence[Callable[[], object]]
                  ) -> List[object]:
        """Run ``fns`` on the pool and wait for all of them.

        The calling thread *helps*: after submitting, it claims and
        executes still-unclaimed group tasks inline, then blocks only
        on tasks already running on other workers.  Safe to call from
        inside a pool task (nested fan-out cannot deadlock; see the
        module docstring).  Results come back in submission order; the
        first failing task's exception is re-raised after the whole
        group has finished (no torn partial writes are left behind:
        every sibling completes or fails before the raise).
        """
        tasks = [Task(fn) for fn in fns]
        with self._available:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self._ensure_threads()
            self._queue.extend(tasks)
            self._available.notify(len(tasks))
        for task in tasks:
            with self._lock:
                if task.claimed:
                    continue
                self._queue.remove(task)
                task.claimed = True
            task.execute()
        for task in tasks:
            task.wait()
        for task in tasks:
            if task.error is not None:
                raise task.error
        return [task.result for task in tasks]

    # -- worker side ---------------------------------------------------------

    def _worker_loop(self, index: int) -> None:
        self._local.worker = index
        while True:
            with self._available:
                while not self._queue and not self._closed:
                    self._available.wait()
                if self._closed and not self._queue:
                    return
                task = self._queue.popleft()
                task.claimed = True
            task.execute()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain and stop the workers (idempotent)."""
        with self._available:
            if self._closed:
                return
            self._closed = True
            self._available.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._blas.release()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
