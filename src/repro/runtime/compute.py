"""Functional layer execution under a quantization policy.

The :class:`LayerComputer` produces the actual numbers an execution
computes -- on the integer pipeline for QUInt8 compute (Figure 9a), on
the half-precision pipeline for F16 GPU compute over QUInt8 storage
(Figure 9b), or on plain float pipelines for the uniform baselines.

Placement only changes the *numerics* of GEMM-shaped layers (conv, FC):
under the processor-friendly policy the CPU's channels come from the
integer pipeline and the GPU's from the F16 pipeline, both requantized
into the same calibrated output range, so a cooperative layer's output
is the channel-wise concatenation of the two pipelines' results.
Non-GEMM layers (pooling, ReLU, concat, ...) are computed identically
on either processor, which keeps their cooperative split bit-exact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import PlanError, QuantizationError
from ..kernels import (conv_output_hw, flatten_filters, gemm_f16, im2col,
                       qgemm)
from ..nn import Graph, LayerKind
from ..nn.layers import (Conv2D, DepthwiseConv2D, FullyConnected)
from ..kernels.qgemm import quantize_bias
from ..quant import dequantize_to_half, requantize
from ..quant.calibrate import CalibrationTable
from ..tensor import DType, QuantParams, Tensor, concat_channels
from .distribution import channel_ranges
from .pfq import QuantizationPolicy

#: Kinds computed identically regardless of processor placement.
_PLACEMENT_INVARIANT_KINDS = frozenset({
    LayerKind.MAX_POOL, LayerKind.AVG_POOL, LayerKind.RELU,
    LayerKind.CONCAT, LayerKind.ADD, LayerKind.SOFTMAX, LayerKind.LRN,
    LayerKind.FLATTEN,
})


class LayerComputer:
    """Computes layer outputs under one quantization policy."""

    def __init__(self, graph: Graph, policy: QuantizationPolicy,
                 calibration: Optional[CalibrationTable] = None) -> None:
        if policy.is_quantized and calibration is None:
            raise QuantizationError(
                "QUInt8 activation storage requires a calibration table "
                "(run repro.nn.calibrate_graph first)")
        self._graph = graph
        self._policy = policy
        self._calibration = calibration
        self._weight_cache: Dict[str, Tuple[np.ndarray, QuantParams]] = {}

    # -- public API ---------------------------------------------------------

    def input_tensor(self, layer_name: str, data: np.ndarray) -> Tensor:
        """Convert external input data into storage representation."""
        data = np.asarray(data, dtype=np.float32)
        storage = self._policy.activation_storage
        if storage is DType.QUINT8:
            return Tensor.from_float(data, storage,
                                     self._out_qparams(layer_name))
        return Tensor.from_float(data, storage)

    def run_full(self, name: str, inputs: List[Tensor],
                 resource: str) -> Tensor:
        """Execute one whole layer on ``resource`` (``"cpu"``/``"gpu"``)."""
        layer = self._graph.layer(name)
        if layer.kind in (LayerKind.CONV, LayerKind.FC):
            return self._run_gemm_layer(name, inputs, resource,
                                        channel_range=None)
        if layer.kind is LayerKind.DEPTHWISE_CONV:
            return self._run_depthwise(name, inputs, resource,
                                       channel_range=None)
        return self._run_invariant(name, inputs)

    def run_cooperative(self, name: str, inputs: List[Tensor],
                        split: float) -> Tensor:
        """Execute one layer split channel-wise between CPU and GPU."""
        return self.run_cooperative_shares(
            name, inputs, {"cpu": split, "gpu": 1.0 - split})

    def run_cooperative_shares(self, name: str, inputs: List[Tensor],
                               shares: "dict[str, float]") -> Tensor:
        """Execute one layer split channel-wise by per-processor shares.

        Supports the three-way CPU/NPU/GPU distribution of the paper's
        Section 8.3 extension: each processor computes its contiguous
        channel range through its own pipeline (integer for CPU/NPU,
        F16 for the GPU under the processor-friendly policy), and the
        parts concatenate in channel order.
        """
        layer = self._graph.layer(name)
        if not layer.supports_channel_split:
            raise PlanError(
                f"layer {name!r} ({layer.kind}) cannot be split")
        total = self._output_channels(name)
        ranges = channel_ranges(total, shares)
        parts: List[Tensor] = []
        if layer.kind in (LayerKind.CONV, LayerKind.FC):
            for resource, (lo, hi) in ranges.items():
                parts.append(self._run_gemm_layer(
                    name, inputs, resource, channel_range=(lo, hi)))
            return concat_channels(parts,
                                   axis=self._channel_axis(name))
        if layer.kind is LayerKind.DEPTHWISE_CONV:
            for resource, (lo, hi) in ranges.items():
                parts.append(self._run_depthwise(
                    name, inputs, resource, channel_range=(lo, hi)))
            return concat_channels(parts)
        # Input-split kinds compute identically on every processor, so
        # split, process, and merge channel slices.
        (x,) = inputs
        for _, (lo, hi) in ranges.items():
            parts.append(self._run_invariant(
                name, [x.slice_channels(lo, hi)]))
        return concat_channels(parts)

    # -- helpers --------------------------------------------------------------

    def _channel_axis(self, name: str) -> int:
        shape = self._graph.infer_shapes()[name]
        return 1 if len(shape) >= 2 else 0

    def _output_channels(self, name: str) -> int:
        shape = self._graph.infer_shapes()[name]
        return shape[1]

    def _out_qparams(self, name: str) -> QuantParams:
        assert self._calibration is not None
        return self._calibration.get(name)

    def _quantized_weights(self, name: str, weights: np.ndarray
                           ) -> Tuple[np.ndarray, QuantParams]:
        """Quantized filter codes (cached per layer)."""
        cached = self._weight_cache.get(name)
        if cached is None:
            qparams = QuantParams.from_array(weights)
            cached = (qparams.quantize(weights), qparams)
            self._weight_cache[name] = cached
        return cached

    def _store(self, name: str, values: np.ndarray) -> Tensor:
        """Pack float results into the storage representation."""
        storage = self._policy.activation_storage
        if storage is DType.QUINT8:
            qparams = self._out_qparams(name)
            return Tensor(qparams.quantize(values), storage, qparams)
        return Tensor.from_float(values, storage)

    # -- GEMM layers (conv / FC) ----------------------------------------------

    def _run_gemm_layer(self, name: str, inputs: List[Tensor],
                        resource: str,
                        channel_range: Optional[Tuple[int, int]]) -> Tensor:
        layer = self._graph.layer(name)
        (x,) = inputs
        if isinstance(layer, Conv2D):
            weights, bias = layer.weights, layer.bias
        elif isinstance(layer, FullyConnected):
            weights, bias = layer.weights, layer.bias
        else:
            raise PlanError(f"layer {name!r} is not GEMM-shaped")
        if weights is None or bias is None:
            raise PlanError(f"layer {name!r} has no weights")
        compute_dtype = self._policy.compute_dtype(resource)
        storage = self._policy.activation_storage
        if storage is DType.QUINT8 and compute_dtype is DType.QUINT8:
            return self._gemm_integer(name, layer, x, weights, bias,
                                      channel_range)
        if storage is DType.QUINT8:
            return self._gemm_float_over_quant(name, layer, x, weights,
                                               bias, channel_range,
                                               compute_dtype)
        return self._gemm_float(name, layer, x, weights, bias,
                                channel_range, compute_dtype)

    def _gemm_operands(self, layer, x_codes_or_vals: np.ndarray,
                       weights: np.ndarray,
                       pad_value: float) -> Tuple[np.ndarray, np.ndarray,
                                                  Tuple[int, ...]]:
        """im2col the input and flatten the filters; returns
        (lhs rows, rhs matrix (k, n), output NCHW/NF shape)."""
        if isinstance(layer, Conv2D):
            batch = x_codes_or_vals.shape[0]
            out_h, out_w = conv_output_hw(
                x_codes_or_vals.shape[2], x_codes_or_vals.shape[3],
                layer.kernel, layer.stride, layer.padding)
            columns = im2col(x_codes_or_vals, layer.kernel, layer.stride,
                             layer.padding, pad_value=pad_value)
            lhs = columns.reshape(-1, columns.shape[-1])
            rhs = flatten_filters(weights).T
            return lhs, rhs, (batch, weights.shape[0], out_h, out_w)
        lhs = x_codes_or_vals
        rhs = weights.T
        return lhs, rhs, (x_codes_or_vals.shape[0], weights.shape[0])

    @staticmethod
    def _fold_gemm_output(out_rows: np.ndarray,
                          shape: Tuple[int, ...]) -> np.ndarray:
        if len(shape) == 4:
            batch, out_c, out_h, out_w = shape
            out = out_rows.reshape(batch, out_h, out_w, out_c)
            return np.ascontiguousarray(out.transpose(0, 3, 1, 2))
        return out_rows.reshape(shape)

    def _gemm_integer(self, name: str, layer, x: Tensor,
                      weights: np.ndarray, bias: np.ndarray,
                      channel_range: Optional[Tuple[int, int]]) -> Tensor:
        """CPU path: gemmlowp-style integer GEMM (Figure 9a)."""
        weight_codes, w_qparams = self._quantized_weights(name, weights)
        if channel_range is not None:
            lo, hi = channel_range
            weight_codes = weight_codes[lo:hi]
            bias = bias[lo:hi]
        assert x.qparams is not None
        lhs, rhs, shape = self._gemm_operands(
            layer, x.data, weight_codes,
            pad_value=float(x.qparams.zero_point))
        out_qparams = self._out_qparams(name)
        out_rows = qgemm(lhs, x.qparams, rhs, w_qparams, out_qparams,
                         bias=bias, relu=layer.relu)
        folded = self._fold_gemm_output(out_rows, shape)
        return Tensor(folded, DType.QUINT8, out_qparams)

    def _gemm_float_over_quant(self, name: str, layer, x: Tensor,
                               weights: np.ndarray, bias: np.ndarray,
                               channel_range: Optional[Tuple[int, int]],
                               compute_dtype: DType) -> Tensor:
        """GPU path: load QUInt8, compute in F16, requantize
        (Figure 9b)."""
        if channel_range is not None:
            lo, hi = channel_range
            weights = weights[lo:hi]
            bias = bias[lo:hi]
        assert x.qparams is not None
        x_half = dequantize_to_half(x.data, x.qparams)
        if compute_dtype is DType.F16:
            lhs, rhs, shape = self._gemm_operands(layer, x_half, weights,
                                                  pad_value=0.0)
            out_rows = gemm_f16(lhs, rhs.astype(np.float16),
                                bias).astype(np.float32)
        else:  # F32 compute over quantized storage
            lhs, rhs, shape = self._gemm_operands(
                layer, x_half.astype(np.float32), weights, pad_value=0.0)
            out_rows = lhs @ rhs + bias
        if layer.relu:
            out_rows = np.maximum(out_rows, 0.0)
        folded = self._fold_gemm_output(out_rows, shape)
        out_qparams = self._out_qparams(name)
        return Tensor(out_qparams.quantize(folded), DType.QUINT8,
                      out_qparams)

    def _gemm_float(self, name: str, layer, x: Tensor,
                    weights: np.ndarray, bias: np.ndarray,
                    channel_range: Optional[Tuple[int, int]],
                    compute_dtype: DType) -> Tensor:
        """Uniform float path (F32 or F16 end to end)."""
        if channel_range is not None:
            lo, hi = channel_range
            weights = weights[lo:hi]
            bias = bias[lo:hi]
        values = x.to_float()
        if compute_dtype is DType.F16:
            lhs, rhs, shape = self._gemm_operands(
                layer, values.astype(np.float16), weights.astype(
                    np.float16), pad_value=0.0)
            out_rows = gemm_f16(lhs, rhs, bias).astype(np.float32)
        else:
            lhs, rhs, shape = self._gemm_operands(layer, values, weights,
                                                  pad_value=0.0)
            out_rows = lhs @ rhs + bias
        if layer.relu:
            out_rows = np.maximum(out_rows, 0.0)
        folded = self._fold_gemm_output(out_rows, shape)
        return self._store(name, folded)

    # -- depthwise convolution ------------------------------------------------

    def _run_depthwise(self, name: str, inputs: List[Tensor],
                       resource: str,
                       channel_range: Optional[Tuple[int, int]]) -> Tensor:
        layer = self._graph.layer(name)
        assert isinstance(layer, DepthwiseConv2D)
        if layer.weights is None or layer.bias is None:
            raise PlanError(f"layer {name!r} has no weights")
        (x,) = inputs
        weights, bias = layer.weights, layer.bias
        offset = 0
        if channel_range is not None:
            lo, hi = channel_range
            offset = lo
            x = x.slice_channels(lo, hi)
            weights = weights[lo:hi]
            bias = bias[lo:hi]
        compute_dtype = self._policy.compute_dtype(resource)
        storage = self._policy.activation_storage
        if storage is DType.QUINT8 and compute_dtype is DType.QUINT8:
            return self._depthwise_integer(name, layer, x, weights, bias,
                                           offset)
        # Float compute (uniform float, or F16-over-quantized).
        values = x.to_float()
        out = self._depthwise_float(layer, values, weights, bias,
                                    compute_dtype)
        if storage is DType.QUINT8:
            out_qparams = self._out_qparams(name)
            return Tensor(out_qparams.quantize(out), DType.QUINT8,
                          out_qparams)
        return self._store(name, out)

    @staticmethod
    def _depthwise_float(layer: DepthwiseConv2D, values: np.ndarray,
                         weights: np.ndarray, bias: np.ndarray,
                         compute_dtype: DType) -> np.ndarray:
        batch, channels, in_h, in_w = values.shape
        if compute_dtype is DType.F16:
            values = values.astype(np.float16).astype(np.float32)
            weights = weights.astype(np.float16).astype(np.float32)
        columns = im2col(values.reshape(batch * channels, 1, in_h, in_w),
                         layer.kernel, layer.stride, layer.padding)
        filters = np.tile(weights.reshape(channels, -1), (batch, 1))
        out = np.einsum("npk,nk->np", columns, filters)
        out_h, out_w = conv_output_hw(in_h, in_w, layer.kernel,
                                      layer.stride, layer.padding)
        out = out.reshape(batch, channels, out_h, out_w)
        out = out + bias[None, :, None, None]
        if compute_dtype is DType.F16:
            out = out.astype(np.float16).astype(np.float32)
        if layer.relu:
            out = np.maximum(out, 0.0)
        return out.astype(np.float32)

    def _depthwise_integer(self, name: str, layer: DepthwiseConv2D,
                           x: Tensor, weights: np.ndarray,
                           bias: np.ndarray, offset: int) -> Tensor:
        """Integer depthwise conv with i32 accumulation + requantize."""
        weight_codes_full, w_qparams = self._quantized_weights(
            name, layer.weights)
        channels = weights.shape[0]
        weight_codes = weight_codes_full[offset:offset + channels]
        assert x.qparams is not None
        batch = x.shape[0]
        in_h, in_w = x.shape[2], x.shape[3]
        columns = im2col(
            x.data.reshape(batch * channels, 1, in_h, in_w),
            layer.kernel, layer.stride, layer.padding,
            pad_value=float(x.qparams.zero_point))
        lhs = columns.astype(np.int32) - np.int32(x.qparams.zero_point)
        rhs = (np.tile(weight_codes.reshape(channels, -1), (batch, 1))
               .astype(np.int32) - np.int32(w_qparams.zero_point))
        acc = np.einsum("npk,nk->np", lhs, rhs, dtype=np.int64)
        acc = acc.astype(np.int32)
        bias_i32 = quantize_bias(bias, x.qparams.scale, w_qparams.scale)
        acc = acc + np.repeat(
            np.tile(bias_i32, batch), acc.shape[1]).reshape(acc.shape)
        out_h, out_w = conv_output_hw(in_h, in_w, layer.kernel,
                                      layer.stride, layer.padding)
        out_qparams = self._out_qparams(name)
        codes = requantize(acc, x.qparams.scale, w_qparams.scale,
                           out_qparams)
        codes = codes.reshape(batch, channels, out_h, out_w)
        if layer.relu:
            codes = np.maximum(codes, np.uint8(out_qparams.zero_point))
        return Tensor(codes, DType.QUINT8, out_qparams)

    # -- placement-invariant layers ------------------------------------------

    def _run_invariant(self, name: str, inputs: List[Tensor]) -> Tensor:
        layer = self._graph.layer(name)
        if layer.kind not in _PLACEMENT_INVARIANT_KINDS:
            raise PlanError(
                f"layer {name!r} ({layer.kind}) has no placement-"
                "invariant implementation")
        storage = self._policy.activation_storage
        if storage is not DType.QUINT8:
            values = [t.to_float() for t in inputs]
            return self._store(name, layer.forward_f32(values))
        return self._run_invariant_quantized(name, layer, inputs)

    def _run_invariant_quantized(self, name: str, layer,
                                 inputs: List[Tensor]) -> Tensor:
        kind = layer.kind
        if kind is LayerKind.MAX_POOL:
            # Max of codes == max of reals (monotone map); parameters
            # pass through unchanged, as in TFLite.
            (x,) = inputs
            from ..kernels import max_pool
            codes = max_pool(x.data, layer.kernel, layer.stride,
                             layer.padding)
            return Tensor(codes.astype(np.uint8), DType.QUINT8, x.qparams)
        if kind is LayerKind.RELU:
            (x,) = inputs
            assert x.qparams is not None
            codes = np.maximum(x.data, np.uint8(x.qparams.zero_point))
            return Tensor(codes, DType.QUINT8, x.qparams)
        if kind is LayerKind.FLATTEN:
            (x,) = inputs
            return Tensor(x.data.reshape(x.shape[0], -1), DType.QUINT8,
                          x.qparams)
        if kind is LayerKind.AVG_POOL:
            # Averaging is affine, so averaging codes (with real-zero
            # padding = the zero point) equals averaging reals; round
            # back to the same grid.
            (x,) = inputs
            assert x.qparams is not None
            values = layer.forward_f32(
                [x.data.astype(np.float32)
                 - float(x.qparams.zero_point)])
            codes = np.clip(np.round(values + x.qparams.zero_point),
                            0, 255).astype(np.uint8)
            return Tensor(codes, DType.QUINT8, x.qparams)
        if kind is LayerKind.CONCAT:
            out_qparams = self._out_qparams(name)
            parts = [Tensor(out_qparams.quantize(t.to_float()),
                            DType.QUINT8, out_qparams) for t in inputs]
            return concat_channels(parts, axis=layer.axis)
        # ADD / SOFTMAX / LRN: dequantize, compute in float, requantize.
        values = [t.to_float() for t in inputs]
        out = layer.forward_f32(values)
        out_qparams = self._out_qparams(name)
        return Tensor(out_qparams.quantize(out), DType.QUINT8, out_qparams)
