"""Functional layer execution under a quantization policy.

The :class:`LayerComputer` produces the actual numbers an execution
computes -- on the integer pipeline for QUInt8 compute (Figure 9a), on
the half-precision pipeline for F16 GPU compute over QUInt8 storage
(Figure 9b), or on plain float pipelines for the uniform baselines.

Placement only changes the *numerics* of GEMM-shaped layers (conv, FC):
under the processor-friendly policy the CPU's channels come from the
integer pipeline and the GPU's from the F16 pipeline, both requantized
into the same calibrated output range, so a cooperative layer's output
is the channel-wise concatenation of the two pipelines' results.
Non-GEMM layers (pooling, ReLU, concat, ...) are computed identically
on either processor, which keeps their cooperative split bit-exact.

Performance engineering
-----------------------

Two operand caches (both :class:`~repro.kernels.op_cache.OperandCache`)
remove the redundant numpy work that otherwise dominates functional
wall clock; they are on by default and can be disabled with
``enable_caches=False`` for the bit-exactness reference path:

* an **im2col column cache**, keyed ``(layer, "cols", variant)`` and
  validated against the input array's identity, so the placements of a
  cooperative layer share one column matrix per numeric variant
  instead of each re-gathering it.  Under QUInt8 storage *every*
  pipeline lowers the uint8 codes (variant ``"codes"``): the float
  pipelines dequantize the shared code columns through a 256-entry
  lookup table (:func:`~repro.quant.half.dequantize_lut`), which is
  bit-identical to gathering dequantized data because an elementwise
  map commutes with an index gather and the table maps the integer
  pipeline's zero-point padding to exactly 0.0.  A cooperative PFQ
  layer therefore gathers its columns once for both the CPU's integer
  GEMM and the GPU's F16 GEMM.  Float storage keeps per-dtype variants
  (``"f16"``/``"f32"``).  Depthwise layers cache the *full-input*
  columns once and hand each placement its channel slice.  The cache
  is bounded (LRU) and cleared by :meth:`begin_inference`.

* a persistent **packed-operand cache**, keyed
  ``(layer, kind, channel_range, ...)`` and validated against the
  weight/bias array identity, holding the flattened/transposed filter
  matrices, the f16 filter casts, and -- for QUInt8 compute -- the
  pre-quantized codes, the int32-widened GEMM operand, the weight-side
  column sums ``sum_k qr`` of the gemmlowp identity, and the
  accumulator-domain bias.  Entries invalidate automatically when a
  layer's weight *array object* is replaced (``set_weights`` after
  surgery/QAT); in-place mutation of the same array requires an
  explicit :meth:`invalidate_weights`.

Cached execution is byte-identical to the uncached path: every cached
artifact is either built by exactly the same expression the uncached
path evaluates, or differs only by operations that commute bit-exactly
(elementwise casts/dequantization versus index gathers and slices).
``tests/test_op_caches.py`` verifies this across the model zoo and all
policies.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..errors import PlanError, QuantizationError
from ..kernels import (OperandCache, conv_output_hw, flatten_filters,
                       gemm_f16, im2col, qgemm)
from ..nn import Graph, LayerKind
from ..nn.layers import (Conv2D, DepthwiseConv2D, FullyConnected)
from ..kernels.qgemm import quantize_bias
from ..quant import dequantize_lut, dequantize_to_half, requantize
from ..quant.calibrate import CalibrationTable
from ..tensor import DType, QuantParams, Tensor, concat_channels
from .distribution import channel_ranges
from .pfq import QuantizationPolicy

#: Kinds computed identically regardless of processor placement.
_PLACEMENT_INVARIANT_KINDS = frozenset({
    LayerKind.MAX_POOL, LayerKind.AVG_POOL, LayerKind.RELU,
    LayerKind.CONCAT, LayerKind.ADD, LayerKind.SOFTMAX, LayerKind.LRN,
    LayerKind.FLATTEN,
})

#: LRU bound of the activation-side column cache: large enough for all
#: placements of the layers currently in flight, small enough that the
#: column matrices of a deep network never accumulate.
_COLUMN_CACHE_ENTRIES = 8

#: LRU bound of the weight-side packed-operand cache (entries, not
#: bytes; the int32-widened integer operands are the largest at 4x the
#: weight footprint of their layer).
_PACKED_CACHE_ENTRIES = 512


def _int_rhs(rhs_codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The int32-widened GEMM operand and its column sums."""
    rhs_i32 = rhs_codes.astype(np.int32)
    return rhs_i32, rhs_i32.sum(axis=0, keepdims=True)


class LayerComputer:
    """Computes layer outputs under one quantization policy.

    Args:
        graph: the network.
        policy: data types per processor and storage.
        calibration: per-layer activation ranges (required when the
            policy stores activations as QUInt8).
        enable_caches: use the im2col / packed-operand caches (True,
            the default); False computes every operand from scratch on
            every call -- the reference path the cache bit-exactness
            tests compare against.
    """

    def __init__(self, graph: Graph, policy: QuantizationPolicy,
                 calibration: Optional[CalibrationTable] = None,
                 enable_caches: bool = True) -> None:
        if policy.is_quantized and calibration is None:
            raise QuantizationError(
                "QUInt8 activation storage requires a calibration table "
                "(run repro.nn.calibrate_graph first)")
        self._graph = graph
        self._policy = policy
        self._calibration = calibration
        self._enable_caches = enable_caches
        self._columns = OperandCache(
            name="im2col", max_entries=_COLUMN_CACHE_ENTRIES)
        self._packed = OperandCache(
            name="packed", max_entries=_PACKED_CACHE_ENTRIES)
        # Shape memo: Graph.infer_shapes() returns a fresh dict copy on
        # every call, which turns the per-layer channel lookups of a
        # cooperative run into O(layers^2) dict copies.  A computer is
        # bound to one (already complete) graph, so the shapes are
        # resolved once and reused.
        self._shapes: "Optional[Dict[str, Tuple[int, ...]]]" = None

    # -- public API ---------------------------------------------------------

    def begin_inference(self) -> None:
        """Drop activation-derived cache state before a new inference.

        Only the column cache is cleared -- its entries are keyed to
        the previous inference's activation arrays and can never hit
        again; releasing them bounds memory.  Packed weight operands
        persist across inferences (that is their point).
        """
        self._columns.clear()

    def invalidate_weights(self, name: Optional[str] = None) -> None:
        """Drop packed operands derived from weights.

        Needed only after *in-place* mutation of a layer's weight or
        bias arrays (``layer.weights *= 2``); installing new arrays via
        ``set_weights`` is detected automatically by array identity.

        Args:
            name: a single layer to invalidate, or None for all.
        """
        if name is None:
            self._packed.invalidate()
        else:
            self._packed.invalidate(name)

    def cache_stats(self) -> Dict[str, Dict[str, float]]:
        """Hit/miss counters of both operand caches."""
        return {"im2col": self._columns.stats(),
                "packed": self._packed.stats()}

    def input_tensor(self, layer_name: str, data: np.ndarray) -> Tensor:
        """Convert external input data into storage representation."""
        data = np.asarray(data, dtype=np.float32)
        storage = self._policy.activation_storage
        if storage is DType.QUINT8:
            return Tensor.from_float(data, storage,
                                     self._out_qparams(layer_name))
        return Tensor.from_float(data, storage)

    def run_full(self, name: str, inputs: List[Tensor],
                 resource: str) -> Tensor:
        """Execute one whole layer on ``resource`` (``"cpu"``/``"gpu"``)."""
        layer = self._graph.layer(name)
        if layer.kind in (LayerKind.CONV, LayerKind.FC):
            return self._run_gemm_layer(name, inputs, resource,
                                        channel_range=None)
        if layer.kind is LayerKind.DEPTHWISE_CONV:
            return self._run_depthwise(name, inputs, resource,
                                       channel_range=None)
        return self._run_invariant(name, inputs)

    def run_cooperative(self, name: str, inputs: List[Tensor],
                        split: float) -> Tensor:
        """Execute one layer split channel-wise between CPU and GPU."""
        return self.run_cooperative_shares(
            name, inputs, {"cpu": split, "gpu": 1.0 - split})

    def run_cooperative_shares(self, name: str, inputs: List[Tensor],
                               shares: "dict[str, float]") -> Tensor:
        """Execute one layer split channel-wise by per-processor shares.

        Supports the three-way CPU/NPU/GPU distribution of the paper's
        Section 8.3 extension: each processor computes its contiguous
        channel range through its own pipeline (integer for CPU/NPU,
        F16 for the GPU under the processor-friendly policy), and the
        parts concatenate in channel order.
        """
        layer = self._graph.layer(name)
        if not layer.supports_channel_split:
            raise PlanError(
                f"layer {name!r} ({layer.kind}) cannot be split")
        total = self._output_channels(name)
        ranges = channel_ranges(total, shares)
        parts: List[Tensor] = []
        if layer.kind in (LayerKind.CONV, LayerKind.FC):
            for resource, (lo, hi) in ranges.items():
                parts.append(self._run_gemm_layer(
                    name, inputs, resource, channel_range=(lo, hi)))
            return concat_channels(parts,
                                   axis=self._channel_axis(name))
        if layer.kind is LayerKind.DEPTHWISE_CONV:
            for resource, (lo, hi) in ranges.items():
                parts.append(self._run_depthwise(
                    name, inputs, resource, channel_range=(lo, hi)))
            return concat_channels(parts)
        # Input-split kinds compute identically on every processor, so
        # split, process, and merge channel slices.
        (x,) = inputs
        for _, (lo, hi) in ranges.items():
            parts.append(self._run_invariant(
                name, [x.slice_channels(lo, hi)]))
        return concat_channels(parts)

    # -- helpers --------------------------------------------------------------

    def _shape_of(self, name: str) -> Tuple[int, ...]:
        if self._shapes is None:
            self._shapes = self._graph.infer_shapes()
        return self._shapes[name]

    def _channel_axis(self, name: str) -> int:
        shape = self._shape_of(name)
        return 1 if len(shape) >= 2 else 0

    def _output_channels(self, name: str) -> int:
        shape = self._shape_of(name)
        return shape[1]

    def _dequant_lut(self, name: str, qparams: QuantParams,
                     variant: str) -> np.ndarray:
        """The 256-entry code->real table one float pipeline applies to
        shared uint8 columns; cached per (layer, variant, qparams)."""

        def build() -> np.ndarray:
            lut = dequantize_lut(qparams)
            if variant == "half":
                return lut
            if variant == "half_f32":
                return lut.astype(np.float32)
            # Depthwise float lowering dequantizes via Tensor.to_float
            # (f32), optionally rounding through f16 -- replicate that
            # exact elementwise map.
            table = qparams.dequantize(np.arange(256, dtype=np.uint8))
            if variant == "f16f":
                table = table.astype(np.float16).astype(np.float32)
            return table

        return self._packed_operand(
            (name, "deq_lut", variant, qparams.scale, qparams.zero_point),
            None, build)

    def _out_qparams(self, name: str) -> QuantParams:
        assert self._calibration is not None
        return self._calibration.get(name)

    def _cached_columns(self, name: str, variant: str, source: Any,
                        builder: Callable[[], np.ndarray]) -> np.ndarray:
        """im2col columns shared across placements of one layer."""
        if not self._enable_caches:
            return builder()
        return self._columns.get((name, "cols", variant), source, builder)

    def _packed_operand(self, key: Hashable, source: Any,
                        builder: Callable[[], Any]) -> Any:
        if not self._enable_caches:
            return builder()
        return self._packed.get(key, source, builder)

    def _quantized_weights(self, name: str, weights: np.ndarray
                           ) -> Tuple[np.ndarray, QuantParams]:
        """Quantized filter codes, cached per layer and validated
        against the weight array's identity so surgery/QAT weight
        updates can never serve stale codes."""

        def build() -> Tuple[np.ndarray, QuantParams]:
            qparams = QuantParams.from_array(weights)
            return (qparams.quantize(weights), qparams)

        return self._packed.get((name, "wcodes"), weights, build)

    def _store(self, name: str, values: np.ndarray) -> Tensor:
        """Pack float results into the storage representation."""
        storage = self._policy.activation_storage
        if storage is DType.QUINT8:
            qparams = self._out_qparams(name)
            return Tensor(qparams.quantize(values), storage, qparams)
        return Tensor.from_float(values, storage)

    # -- GEMM layers (conv / FC) ----------------------------------------------

    def _run_gemm_layer(self, name: str, inputs: List[Tensor],
                        resource: str,
                        channel_range: Optional[Tuple[int, int]]) -> Tensor:
        layer = self._graph.layer(name)
        (x,) = inputs
        if isinstance(layer, (Conv2D, FullyConnected)):
            weights, bias = layer.weights, layer.bias
        else:
            raise PlanError(f"layer {name!r} is not GEMM-shaped")
        if weights is None or bias is None:
            raise PlanError(f"layer {name!r} has no weights")
        compute_dtype = self._policy.compute_dtype(resource)
        storage = self._policy.activation_storage
        if storage is DType.QUINT8 and compute_dtype is DType.QUINT8:
            return self._gemm_integer(name, layer, x, weights, bias,
                                      channel_range)
        if storage is DType.QUINT8:
            return self._gemm_float_over_quant(name, layer, x, weights,
                                               bias, channel_range,
                                               compute_dtype)
        return self._gemm_float(name, layer, x, weights, bias,
                                channel_range, compute_dtype)

    def _conv_out_shape(self, layer: Conv2D, x_arr: np.ndarray,
                        out_channels: int) -> Tuple[int, ...]:
        out_h, out_w = conv_output_hw(x_arr.shape[2], x_arr.shape[3],
                                      layer.kernel, layer.stride,
                                      layer.padding)
        return (x_arr.shape[0], out_channels, out_h, out_w)

    @staticmethod
    def _fold_gemm_output(out_rows: np.ndarray,
                          shape: Tuple[int, ...]) -> np.ndarray:
        if len(shape) == 4:
            batch, out_c, out_h, out_w = shape
            out = out_rows.reshape(batch, out_h, out_w, out_c)
            return np.ascontiguousarray(out.transpose(0, 3, 1, 2))
        return out_rows.reshape(shape)

    def _gemm_integer(self, name: str, layer, x: Tensor,
                      weights: np.ndarray, bias: np.ndarray,
                      channel_range: Optional[Tuple[int, int]]) -> Tensor:
        """CPU path: gemmlowp-style integer GEMM (Figure 9a)."""
        weight_codes, w_qparams = self._quantized_weights(name, weights)
        bias_slice = bias
        if channel_range is not None:
            lo, hi = channel_range
            weight_codes = weight_codes[lo:hi]
            bias_slice = bias[lo:hi]
        assert x.qparams is not None
        x_qparams = x.qparams
        pad = float(x_qparams.zero_point)
        if isinstance(layer, Conv2D):
            columns = self._cached_columns(
                name, "codes", x.data,
                lambda: im2col(x.data, layer.kernel, layer.stride,
                               layer.padding, pad_value=pad))
            lhs = columns.reshape(-1, columns.shape[-1])
            rhs = flatten_filters(weight_codes).T
            shape = self._conv_out_shape(layer, x.data,
                                         weight_codes.shape[0])
        else:
            lhs = x.data
            rhs = weight_codes.T
            shape = (x.data.shape[0], weight_codes.shape[0])
        if self._enable_caches:
            rhs_i32, rhs_sums = self._packed_operand(
                (name, "rhs_int", channel_range), weights,
                lambda: _int_rhs(rhs))
            bias_i32 = self._packed_operand(
                (name, "bias_i32", channel_range, x_qparams.scale,
                 w_qparams.scale), bias,
                lambda: quantize_bias(bias_slice, x_qparams.scale,
                                      w_qparams.scale))
        else:
            rhs_i32 = rhs_sums = bias_i32 = None
        out_qparams = self._out_qparams(name)
        out_rows = qgemm(lhs, x_qparams, rhs, w_qparams, out_qparams,
                         bias=bias_slice, relu=layer.relu,
                         rhs_i32=rhs_i32, rhs_sums=rhs_sums,
                         bias_i32=bias_i32)
        folded = self._fold_gemm_output(out_rows, shape)
        return Tensor(folded, DType.QUINT8, out_qparams)

    def _gemm_float_over_quant(self, name: str, layer, x: Tensor,
                               weights: np.ndarray, bias: np.ndarray,
                               channel_range: Optional[Tuple[int, int]],
                               compute_dtype: DType) -> Tensor:
        """GPU path: load QUInt8, compute in F16, requantize
        (Figure 9b)."""
        weights_slice, bias_slice = weights, bias
        if channel_range is not None:
            lo, hi = channel_range
            weights_slice = weights[lo:hi]
            bias_slice = bias[lo:hi]
        assert x.qparams is not None
        x_qparams = x.qparams
        # Conv layers gather the *uint8 code* columns (shared with the
        # integer pipeline of a cooperative PFQ layer) and dequantize
        # them through a lookup table -- bit-identical to gathering the
        # dequantized input, since the elementwise map commutes with
        # the gather and lut[zero_point] == 0.0 matches the float
        # pipeline's zero padding.
        pad = float(x_qparams.zero_point)
        if compute_dtype is DType.F16:
            if isinstance(layer, Conv2D):
                codes = self._cached_columns(
                    name, "codes", x.data,
                    lambda: im2col(x.data, layer.kernel, layer.stride,
                                   layer.padding, pad_value=pad))
                lut = self._dequant_lut(name, x_qparams, "half")
                lhs: np.ndarray = lut[codes].reshape(-1, codes.shape[-1])
                rhs16 = self._packed_operand(
                    (name, "rhs_f16oq", channel_range), weights,
                    lambda: flatten_filters(weights_slice).T.astype(
                        np.float16))
                shape = self._conv_out_shape(layer, x.data,
                                             weights_slice.shape[0])
            else:
                lhs = dequantize_to_half(x.data, x_qparams)
                rhs16 = self._packed_operand(
                    (name, "rhs_f16oq", channel_range), weights,
                    lambda: weights_slice.T.astype(np.float16))
                shape = (x.data.shape[0], weights_slice.shape[0])
            out_rows = gemm_f16(lhs, rhs16, bias_slice).astype(np.float32)
        else:  # F32 compute over quantized storage
            if isinstance(layer, Conv2D):
                codes = self._cached_columns(
                    name, "codes", x.data,
                    lambda: im2col(x.data, layer.kernel, layer.stride,
                                   layer.padding, pad_value=pad))
                lut = self._dequant_lut(name, x_qparams, "half_f32")
                lhs = lut[codes].reshape(-1, codes.shape[-1])
                rhs = flatten_filters(weights_slice).T
                shape = self._conv_out_shape(layer, x.data,
                                             weights_slice.shape[0])
            else:
                lhs = dequantize_to_half(x.data, x_qparams).astype(
                    np.float32)
                rhs = weights_slice.T
                shape = (x.data.shape[0], weights_slice.shape[0])
            out_rows = lhs @ rhs + bias_slice
        if layer.relu:
            out_rows = np.maximum(out_rows, 0.0)
        folded = self._fold_gemm_output(out_rows, shape)
        out_qparams = self._out_qparams(name)
        return Tensor(out_qparams.quantize(folded), DType.QUINT8,
                      out_qparams)

    def _gemm_float(self, name: str, layer, x: Tensor,
                    weights: np.ndarray, bias: np.ndarray,
                    channel_range: Optional[Tuple[int, int]],
                    compute_dtype: DType) -> Tensor:
        """Uniform float path (F32 or F16 end to end)."""
        weights_slice, bias_slice = weights, bias
        if channel_range is not None:
            lo, hi = channel_range
            weights_slice = weights[lo:hi]
            bias_slice = bias[lo:hi]
        if compute_dtype is DType.F16:
            if isinstance(layer, Conv2D):
                columns = self._cached_columns(
                    name, "f16", x.data,
                    lambda: im2col(x.to_float().astype(np.float16),
                                   layer.kernel, layer.stride,
                                   layer.padding, pad_value=0.0))
                lhs: np.ndarray = columns.reshape(-1, columns.shape[-1])
                rhs = self._packed_operand(
                    (name, "rhs_f16", channel_range), weights,
                    lambda: flatten_filters(
                        weights_slice.astype(np.float16)).T)
                shape = self._conv_out_shape(layer, x.data,
                                             weights_slice.shape[0])
            else:
                lhs = x.to_float().astype(np.float16)
                rhs = self._packed_operand(
                    (name, "rhs_f16", channel_range), weights,
                    lambda: weights_slice.astype(np.float16).T)
                shape = (x.data.shape[0], weights_slice.shape[0])
            out_rows = gemm_f16(lhs, rhs, bias_slice).astype(np.float32)
        else:
            if isinstance(layer, Conv2D):
                columns = self._cached_columns(
                    name, "f32", x.data,
                    lambda: im2col(x.to_float(), layer.kernel,
                                   layer.stride, layer.padding,
                                   pad_value=0.0))
                lhs = columns.reshape(-1, columns.shape[-1])
                rhs = flatten_filters(weights_slice).T
                shape = self._conv_out_shape(layer, x.data,
                                             weights_slice.shape[0])
            else:
                lhs = x.to_float()
                rhs = weights_slice.T
                shape = (x.data.shape[0], weights_slice.shape[0])
            out_rows = lhs @ rhs + bias_slice
        if layer.relu:
            out_rows = np.maximum(out_rows, 0.0)
        folded = self._fold_gemm_output(out_rows, shape)
        return self._store(name, folded)

    # -- depthwise convolution ------------------------------------------------

    def _run_depthwise(self, name: str, inputs: List[Tensor],
                       resource: str,
                       channel_range: Optional[Tuple[int, int]]) -> Tensor:
        layer = self._graph.layer(name)
        assert isinstance(layer, DepthwiseConv2D)
        if layer.weights is None or layer.bias is None:
            raise PlanError(f"layer {name!r} has no weights")
        (x,) = inputs
        total = layer.weights.shape[0]
        lo, hi = (0, total) if channel_range is None else channel_range
        weights = layer.weights[lo:hi]
        bias = layer.bias[lo:hi]
        x_slice = x if channel_range is None else x.slice_channels(lo, hi)
        compute_dtype = self._policy.compute_dtype(resource)
        storage = self._policy.activation_storage
        if storage is DType.QUINT8 and compute_dtype is DType.QUINT8:
            return self._depthwise_integer(name, layer, x, x_slice,
                                           weights, bias, lo, hi)
        # Float compute (uniform float, or F16-over-quantized).
        out = self._depthwise_float(name, layer, x, x_slice, weights,
                                    bias, compute_dtype, lo, hi)
        if storage is DType.QUINT8:
            out_qparams = self._out_qparams(name)
            return Tensor(out_qparams.quantize(out), DType.QUINT8,
                          out_qparams)
        return self._store(name, out)

    def _depthwise_columns(self, name: str, layer: DepthwiseConv2D,
                           x: Tensor, variant: str,
                           full_builder: Callable[[], np.ndarray],
                           slice_builder: Callable[[], np.ndarray],
                           lo: int, hi: int) -> np.ndarray:
        """Per-channel patch columns of a depthwise conv placement.

        With caching on, the columns of the *full* input are built once
        and every placement takes its channel slice (each channel is an
        independent single-channel image, so slicing the full column
        matrix is bit-exact against lowering the sliced input); with
        caching off, each placement lowers its own input slice exactly
        as before.
        """
        if not self._enable_caches:
            return slice_builder()
        columns_full = self._columns.get((name, "cols", variant),
                                         x.data, full_builder)
        batch, channels = x.shape[0], x.shape[1]
        if (lo, hi) == (0, channels):
            return columns_full
        patches, kk = columns_full.shape[1], columns_full.shape[2]
        view = columns_full.reshape(batch, channels, patches, kk)[:, lo:hi]
        return np.ascontiguousarray(view).reshape(
            batch * (hi - lo), patches, kk)

    def _depthwise_float(self, name: str, layer: DepthwiseConv2D,
                         x: Tensor, x_slice: Tensor, weights: np.ndarray,
                         bias: np.ndarray, compute_dtype: DType,
                         lo: int, hi: int) -> np.ndarray:
        batch, channels, in_h, in_w = x_slice.shape
        variant = "f16f" if compute_dtype is DType.F16 else "f32f"

        if x.dtype is DType.QUINT8:
            # Quantized storage: gather the uint8 code columns (shared
            # with a cooperative layer's integer placements) and
            # dequantize through the per-variant lookup table; the
            # table maps the zero-point padding to exactly 0.0, the
            # float lowering's padding.
            assert x.qparams is not None
            x_qparams = x.qparams
            pad = float(x_qparams.zero_point)

            def lower_codes(tensor: Tensor) -> np.ndarray:
                n, c = tensor.shape[0], tensor.shape[1]
                return im2col(tensor.data.reshape(n * c, 1, in_h, in_w),
                              layer.kernel, layer.stride, layer.padding,
                              pad_value=pad)

            codes = self._depthwise_columns(
                name, layer, x, "codes",
                lambda: lower_codes(x), lambda: lower_codes(x_slice),
                lo, hi)
            lut = self._dequant_lut(name, x_qparams, variant)
            columns = lut[codes]
        else:
            def lower(tensor: Tensor) -> np.ndarray:
                values = tensor.to_float()
                if compute_dtype is DType.F16:
                    values = values.astype(np.float16).astype(np.float32)
                n, c = tensor.shape[0], tensor.shape[1]
                return im2col(values.reshape(n * c, 1, in_h, in_w),
                              layer.kernel, layer.stride, layer.padding)

            columns = self._depthwise_columns(
                name, layer, x, variant,
                lambda: lower(x), lambda: lower(x_slice), lo, hi)

        def pack_filters() -> np.ndarray:
            w = weights
            if compute_dtype is DType.F16:
                w = w.astype(np.float16).astype(np.float32)
            return np.tile(w.reshape(channels, -1), (batch, 1))

        filters = self._packed_operand(
            (name, "dw_filters", variant, (lo, hi), batch),
            layer.weights, pack_filters)
        out = np.einsum("npk,nk->np", columns, filters)
        out_h, out_w = conv_output_hw(in_h, in_w, layer.kernel,
                                      layer.stride, layer.padding)
        out = out.reshape(batch, channels, out_h, out_w)
        out = out + bias[None, :, None, None]
        if compute_dtype is DType.F16:
            out = out.astype(np.float16).astype(np.float32)
        if layer.relu:
            out = np.maximum(out, 0.0)
        return out.astype(np.float32)

    def _depthwise_integer(self, name: str, layer: DepthwiseConv2D,
                           x: Tensor, x_slice: Tensor,
                           weights: np.ndarray, bias: np.ndarray,
                           lo: int, hi: int) -> Tensor:
        """Integer depthwise conv with i32 accumulation + requantize."""
        weight_codes_full, w_qparams = self._quantized_weights(
            name, layer.weights)
        channels = weights.shape[0]
        weight_codes = weight_codes_full[lo:lo + channels]
        assert x_slice.qparams is not None
        x_qparams = x_slice.qparams
        batch = x_slice.shape[0]
        in_h, in_w = x_slice.shape[2], x_slice.shape[3]
        pad = float(x_qparams.zero_point)

        def lower(tensor: Tensor) -> np.ndarray:
            n, c = tensor.shape[0], tensor.shape[1]
            return im2col(tensor.data.reshape(n * c, 1, in_h, in_w),
                          layer.kernel, layer.stride, layer.padding,
                          pad_value=pad)

        columns = self._depthwise_columns(
            name, layer, x, "codes",
            lambda: lower(x), lambda: lower(x_slice), lo, hi)
        lhs = columns.astype(np.int32) - np.int32(x_qparams.zero_point)
        rhs = self._packed_operand(
            (name, "dw_rhs_i32", (lo, hi), batch), layer.weights,
            lambda: (np.tile(weight_codes.reshape(channels, -1),
                             (batch, 1)).astype(np.int32)
                     - np.int32(w_qparams.zero_point)))
        acc = np.einsum("npk,nk->np", lhs, rhs, dtype=np.int64)
        acc = acc.astype(np.int32)
        bias_i32 = self._packed_operand(
            (name, "dw_bias_i32", (lo, hi), x_qparams.scale,
             w_qparams.scale), layer.bias,
            lambda: quantize_bias(bias, x_qparams.scale, w_qparams.scale))
        acc = acc + np.repeat(
            np.tile(bias_i32, batch), acc.shape[1]).reshape(acc.shape)
        out_h, out_w = conv_output_hw(in_h, in_w, layer.kernel,
                                      layer.stride, layer.padding)
        out_qparams = self._out_qparams(name)
        codes = requantize(acc, x_qparams.scale, w_qparams.scale,
                           out_qparams)
        codes = codes.reshape(batch, channels, out_h, out_w)
        if layer.relu:
            codes = np.maximum(codes, np.uint8(out_qparams.zero_point))
        return Tensor(codes, DType.QUINT8, out_qparams)

    # -- placement-invariant layers ------------------------------------------

    def _run_invariant(self, name: str, inputs: List[Tensor]) -> Tensor:
        layer = self._graph.layer(name)
        if layer.kind not in _PLACEMENT_INVARIANT_KINDS:
            raise PlanError(
                f"layer {name!r} ({layer.kind}) has no placement-"
                "invariant implementation")
        storage = self._policy.activation_storage
        if storage is not DType.QUINT8:
            values = [t.to_float() for t in inputs]
            return self._store(name, layer.forward_f32(values))
        return self._run_invariant_quantized(name, layer, inputs)

    def _run_invariant_quantized(self, name: str, layer,
                                 inputs: List[Tensor]) -> Tensor:
        kind = layer.kind
        if kind is LayerKind.MAX_POOL:
            # Max of codes == max of reals (monotone map); parameters
            # pass through unchanged, as in TFLite.
            (x,) = inputs
            from ..kernels import max_pool
            codes = max_pool(x.data, layer.kernel, layer.stride,
                             layer.padding)
            return Tensor(codes.astype(np.uint8), DType.QUINT8, x.qparams)
        if kind is LayerKind.RELU:
            (x,) = inputs
            assert x.qparams is not None
            codes = np.maximum(x.data, np.uint8(x.qparams.zero_point))
            return Tensor(codes, DType.QUINT8, x.qparams)
        if kind is LayerKind.FLATTEN:
            (x,) = inputs
            return Tensor(x.data.reshape(x.shape[0], -1), DType.QUINT8,
                          x.qparams)
        if kind is LayerKind.AVG_POOL:
            # Averaging is affine, so averaging codes (with real-zero
            # padding = the zero point) equals averaging reals; round
            # back to the same grid.
            (x,) = inputs
            assert x.qparams is not None
            values = layer.forward_f32(
                [x.data.astype(np.float32)
                 - float(x.qparams.zero_point)])
            codes = np.clip(np.round(values + x.qparams.zero_point),
                            0, 255).astype(np.uint8)
            return Tensor(codes, DType.QUINT8, x.qparams)
        if kind is LayerKind.CONCAT:
            out_qparams = self._out_qparams(name)
            parts = [Tensor(out_qparams.quantize(t.to_float()),
                            DType.QUINT8, out_qparams) for t in inputs]
            return concat_channels(parts, axis=layer.axis)
        # ADD / SOFTMAX / LRN: dequantize, compute in float, requantize.
        values = [t.to_float() for t in inputs]
        out = layer.forward_f32(values)
        out_qparams = self._out_qparams(name)
        return Tensor(out_qparams.quantize(out), DType.QUINT8, out_qparams)
