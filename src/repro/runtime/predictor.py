"""The latency predictor (Section 6).

uLayer's NN partitioner consults a latency predictor to choose split
ratios without executing candidate plans.  Following the paper, the
predictor extends Neurosurgeon's approach: per processor and data type
it fits a *logarithmic-space regression* from layer configuration
features to execution latency, trained on profiling samples; the
partitioner then scales the predicted whole-layer latency by the split
ratio ``p``.

Profiling samples come from the SoC timing model itself (on real
hardware they would come from microbenchmark runs); the regression
still matters because it generalizes from a few hundred profiled
configurations to every layer of every network -- and its error is
visible in the predictor-vs-oracle ablation benchmark.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..errors import CalibrationError
from ..nn import LayerWork
from ..soc import SoCSpec, kernel_cost
from ..tensor import DType
from .pfq import QuantizationPolicy

#: A predictor model key: (resource, compute dtype, activation storage,
#: parameter storage).
ModelKey = Tuple[str, DType, DType, DType]

#: Batch sizes profiled when fitting the batch-aware model.  The grid
#: brackets the serving layer's dynamic-batching range; predictions
#: interpolate (and mildly extrapolate) in log-batch space.
BATCH_PROFILE_GRID = (1, 2, 4, 8, 16)


def _features(work: LayerWork) -> np.ndarray:
    """Log-space feature vector of one layer configuration.

    The quadratic and interaction terms let the linear model
    approximate the saturating utilization curves (small kernels and
    narrow kernels pay more per MAC), roughly halving the held-out
    prediction error compared to purely log-linear features.
    """
    log_macs = np.log1p(float(work.macs))
    log_channels = np.log1p(float(min(work.parallel_channels, 4096)))
    return np.array([
        1.0,
        log_macs,
        np.log1p(float(work.simple_ops)),
        np.log1p(float(work.input_elements)),
        np.log1p(float(work.output_elements)),
        np.log1p(float(work.param_elements)),
        log_channels,
        log_macs * log_macs,
        log_channels * log_channels,
        log_macs * log_channels,
    ])


def _batch_features(work: LayerWork, batch: int) -> np.ndarray:
    """Feature vector of one (layer configuration, batch size) pair.

    Extends :func:`_features` with log-batch terms: ``log(batch)`` is 0
    at batch 1, so the batch model degrades gracefully toward the
    batch-1 behaviour, and the ``log_macs * log_batch`` interaction
    captures how weight-traffic amortization matters more for
    parameter-heavy layers.
    """
    base = _features(work)
    log_batch = np.log(float(batch))
    log_macs = base[1]
    return np.concatenate([base, [
        log_batch,
        log_batch * log_batch,
        log_macs * log_batch,
    ]])


@dataclasses.dataclass
class _Regression:
    """One fitted log-space linear model."""

    weights: np.ndarray
    training_error: float

    def predict(self, work: LayerWork) -> float:
        log_latency = float(_features(work) @ self.weights)
        return float(np.exp(log_latency))


@dataclasses.dataclass
class _BatchRegression:
    """One fitted log-space linear model over (work, batch) pairs."""

    weights: np.ndarray
    training_error: float

    def predict(self, work: LayerWork, batch: int) -> float:
        log_latency = float(_batch_features(work, batch) @ self.weights)
        return float(np.exp(log_latency))


#: Seed of the default profiling sweep (the paper's publication year).
DEFAULT_PROFILING_SEED = 2019


class LatencyPredictor:
    """Per-(processor, dtype) latency regression for one SoC.

    Args:
        soc: the SoC whose timing model supplies profiling samples.
        seed: seed of the default profiling sweep, so fitting is
            reproducible end-to-end (serving simulations depend on it).
    """

    def __init__(self, soc: SoCSpec,
                 seed: int = DEFAULT_PROFILING_SEED) -> None:
        self._soc = soc
        self._seed = seed
        self._models: Dict[ModelKey, _Regression] = {}
        self._batch_models: Dict[ModelKey, _BatchRegression] = {}

    # -- training ----------------------------------------------------------

    def calibrate(self, resource: str, compute_dtype: DType,
                  activation_storage: DType, param_storage: DType,
                  samples: "List[LayerWork] | None" = None) -> float:
        """Fit one model from profiling samples; returns mean relative
        training error.

        When ``samples`` is omitted a default sweep of conv-, FC-, and
        pool-shaped configurations is profiled.

        Fits two models per key: the paper's batch-1 regression
        (untouched by the batching work, so batch-1 plans stay
        bit-identical) and a batch-aware regression profiled over
        :data:`BATCH_PROFILE_GRID`, which the partitioner consults when
        choosing split ratios for batched serving.
        """
        if samples is None:
            samples = default_profiling_samples(seed=self._seed)
        processor = self._soc.processor(resource)
        key = (resource, compute_dtype, activation_storage, param_storage)
        rows = []
        targets = []
        for work in samples:
            cost = kernel_cost(processor, self._soc.memory, work,
                               compute_dtype, activation_storage,
                               param_storage)
            rows.append(_features(work))
            targets.append(np.log(max(cost.busy_s, 1e-9)))
        design = np.asarray(rows)
        observed = np.asarray(targets)
        weights, *_ = np.linalg.lstsq(design, observed, rcond=None)
        predicted = np.exp(design @ weights)
        actual = np.exp(observed)
        error = float(np.mean(np.abs(predicted - actual) / actual))
        self._models[key] = _Regression(weights=weights,
                                        training_error=error)
        batch_rows = []
        batch_targets = []
        for work in samples:
            for batch in BATCH_PROFILE_GRID:
                cost = kernel_cost(processor, self._soc.memory, work,
                                   compute_dtype, activation_storage,
                                   param_storage, batch=batch)
                batch_rows.append(_batch_features(work, batch))
                batch_targets.append(np.log(max(cost.busy_s, 1e-9)))
        batch_design = np.asarray(batch_rows)
        batch_observed = np.asarray(batch_targets)
        batch_weights, *_ = np.linalg.lstsq(batch_design, batch_observed,
                                            rcond=None)
        batch_predicted = np.exp(batch_design @ batch_weights)
        batch_actual = np.exp(batch_observed)
        batch_error = float(np.mean(
            np.abs(batch_predicted - batch_actual) / batch_actual))
        self._batch_models[key] = _BatchRegression(
            weights=batch_weights, training_error=batch_error)
        return error

    def calibrate_policy(self, policy: QuantizationPolicy) -> None:
        """Fit the per-processor models a policy needs on this SoC.

        Covers every processor the SoC has (including the NPU, whose
        compute type is fixed by the policy), so NPU-equipped SoCs can
        be partitioned with the predictor rather than only the oracle.
        """
        for resource in self._soc.resources():
            self.calibrate(resource, policy.compute_dtype(resource),
                           policy.activation_storage,
                           policy.param_storage(resource))

    # -- prediction ----------------------------------------------------------

    def predict(self, resource: str, work: LayerWork,
                policy: QuantizationPolicy, batch: int = 1) -> float:
        """Predicted busy time of ``work`` on ``resource``.

        Batch 1 always uses the paper's batch-1 regression, so adding
        batch awareness changed no batch-1 prediction; larger batches
        consult the batch-aware model fitted over the profiling grid.

        Raises:
            CalibrationError: if the matching model was never fitted.
        """
        key = (resource, policy.compute_dtype(resource),
               policy.activation_storage, policy.param_storage(resource))
        if batch == 1:
            model = self._models.get(key)
            if model is None:
                raise CalibrationError(
                    f"latency predictor has no model for {key}; call "
                    "calibrate_policy() first")
            return model.predict(work)
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        batch_model = self._batch_models.get(key)
        if batch_model is None:
            raise CalibrationError(
                f"latency predictor has no batch model for {key}; call "
                "calibrate_policy() first")
        return batch_model.predict(work, batch)

    def predict_split(self, resource: str, work: LayerWork,
                      fraction: float, policy: QuantizationPolicy,
                      batch: int = 1) -> float:
        """Predicted latency of a channel fraction of a layer.

        As in the paper, the whole-layer prediction is scaled by the
        split ratio rather than re-predicted from the scaled
        configuration.
        """
        return self.predict(resource, work, policy, batch=batch) * fraction

    def training_error(self, resource: str,
                       policy: QuantizationPolicy) -> float:
        """Mean relative training error of the fitted batch-1 model."""
        key = (resource, policy.compute_dtype(resource),
               policy.activation_storage, policy.param_storage(resource))
        model = self._models.get(key)
        if model is None:
            raise CalibrationError(f"no model fitted for {key}")
        return model.training_error

    def batch_training_error(self, resource: str,
                             policy: QuantizationPolicy) -> float:
        """Mean relative training error of the batch-aware model."""
        key = (resource, policy.compute_dtype(resource),
               policy.activation_storage, policy.param_storage(resource))
        model = self._batch_models.get(key)
        if model is None:
            raise CalibrationError(f"no batch model fitted for {key}")
        return model.training_error


def default_profiling_samples(
        seed: int = DEFAULT_PROFILING_SEED) -> List[LayerWork]:
    """A deterministic sweep of layer configurations for calibration.

    Covers conv-shaped (MAC-heavy), FC-shaped (parameter-heavy), and
    pool-shaped (simple-op-only) kernels across four orders of
    magnitude, mirroring the layer population of the evaluated NNs.
    The sweep is drawn from an explicitly seeded generator so two
    predictors fitted with the same seed are bit-identical.
    """
    samples: List[LayerWork] = []
    rng = np.random.default_rng(seed)
    # Conv-shaped: output spatial x channels x filter volume.  Channel
    # counts include the small widths produced by channel splitting so
    # the model learns the GPU's channel-occupancy behaviour.
    for _ in range(160):
        out_hw = int(rng.integers(4, 128)) ** 2
        out_c = int(rng.integers(4, 512))
        filter_volume = int(rng.integers(1, 6)) ** 2 * int(
            rng.integers(3, 512))
        macs = out_hw * out_c * filter_volume
        samples.append(LayerWork(
            macs=macs,
            simple_ops=out_hw * out_c,
            param_elements=out_c * filter_volume,
            input_elements=out_hw * filter_volume // max(
                1, int(rng.integers(1, 4))),
            output_elements=out_hw * out_c,
            parallel_channels=out_c,
        ))
    # FC-shaped: params == macs, tiny activations.
    for _ in range(40):
        in_f = int(rng.integers(64, 16384))
        out_f = int(rng.integers(16, 4096))
        samples.append(LayerWork(
            macs=in_f * out_f,
            simple_ops=out_f,
            param_elements=in_f * out_f + out_f,
            input_elements=in_f,
            output_elements=out_f,
            parallel_channels=out_f,
        ))
    # Pool-shaped: simple ops only.
    for _ in range(40):
        channels = int(rng.integers(4, 512))
        spatial = int(rng.integers(16, 64)) ** 2
        elements = channels * spatial
        window = int(rng.integers(2, 4)) ** 2
        samples.append(LayerWork(
            macs=0,
            simple_ops=elements * window,
            param_elements=0,
            input_elements=elements * window,
            output_elements=elements,
            parallel_channels=channels,
        ))
    return samples
