"""The NN partitioner (Section 6).

The partitioner turns a graph into an :class:`ExecutionPlan`: for each
layer it chooses the channel split ratio ``p`` among the paper's
candidates {0, 0.25, 0.5, 0.75, 1} by consulting the latency predictor
(or, for the oracle ablation, the timing model directly), and -- when
branch distribution is enabled -- decides per fork/join region whether
running whole branches in parallel on single processors beats
cooperative per-layer execution.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..nn import BranchRegion, Graph, LayerWork, find_branch_regions
from ..nn.branches import region_subgraph
from ..soc import ISSUE_US, SoCSpec, kernel_cost
from .branch_dist import NPU_KINDS, estimate_mapping, profile_branches
from .distribution import split_layer_work_shares
from .pfq import PROCESSOR_FRIENDLY, QuantizationPolicy
from .plan import (BranchAssignment, ExecutionPlan, LayerAssignment,
                   SPLIT_CHOICES)
from .predictor import LatencyPredictor


@dataclasses.dataclass(frozen=True)
class PartitionerConfig:
    """Feature switches of the partitioner.

    Attributes:
        enable_channel_distribution: allow cooperative splits (p
            strictly between 0 and 1).  Off, every layer runs on the
            faster single processor (the layer-to-processor shape).
        enable_branch_distribution: allow fork/join regions to run
            whole branches in parallel.
        split_choices: candidate CPU shares.
        use_oracle_costs: cost candidate placements with the timing
            model directly instead of the fitted latency predictor
            (the predictor-vs-oracle ablation).
    """

    enable_channel_distribution: bool = True
    enable_branch_distribution: bool = True
    split_choices: Sequence[float] = SPLIT_CHOICES
    use_oracle_costs: bool = False


class Partitioner:
    """Builds execution plans for one SoC under one policy."""

    def __init__(self, soc: SoCSpec,
                 policy: QuantizationPolicy = PROCESSOR_FRIENDLY,
                 config: Optional[PartitionerConfig] = None,
                 predictor: Optional[LatencyPredictor] = None) -> None:
        self.soc = soc
        self.policy = policy
        self.config = config or PartitionerConfig()
        if predictor is None and not self.config.use_oracle_costs:
            predictor = LatencyPredictor(soc)
            predictor.calibrate_policy(policy)
        self.predictor = predictor

    # -- cost estimation ------------------------------------------------------

    def _busy(self, resource: str, work: LayerWork,
              batch: int = 1) -> float:
        """Estimated busy seconds of ``work`` on ``resource``."""
        if self.config.use_oracle_costs:
            processor = self.soc.processor(resource)
            return kernel_cost(
                processor, self.soc.memory, work,
                self.policy.compute_dtype(resource),
                self.policy.activation_storage,
                self.policy.param_storage(resource),
                batch=batch).busy_s
        assert self.predictor is not None
        return self.predictor.predict(resource, work, self.policy,
                                      batch=batch)

    def estimate_shares_latency(self, graph: Graph, name: str,
                                shares: "Dict[str, float]",
                                batch: int = 1) -> float:
        """Estimated wall latency of one layer split by ``shares``."""
        issue = ISSUE_US * 1e-6
        work = graph.layer_work(name)
        active = {resource: share for resource, share in shares.items()
                  if share > 0.0}
        if list(active) == ["cpu"]:
            return (self._busy("cpu", work, batch)
                    + self.soc.cpu.launch_seconds())
        if len(active) == 1:
            (resource,) = active
            return (issue
                    + self.soc.processor(resource).launch_seconds()
                    + self._busy(resource, work, batch))
        if self.config.use_oracle_costs:
            works = split_layer_work_shares(graph, name, active)
            busy = {resource: self._busy(resource, part, batch)
                    for resource, part in works.items()}
        else:
            # The paper's predictor scales whole-layer latency by the
            # share ratio.
            busy = {resource: self._busy(resource, work, batch) * share
                    for resource, share in active.items()}
        sides = []
        for resource, busy_s in busy.items():
            launch = self.soc.processor(resource).launch_seconds()
            sides.append(issue + launch + busy_s)
        # Cooperative layers pay one synchronization per accelerator
        # used (the event waits serialize on the CPU) plus a zero-copy
        # map of the merged output when the next consumer touches it.
        accelerators = sum(1 for resource in active if resource != "cpu")
        merge_bytes = (work.output_elements * batch
                       * self.policy.activation_storage.itemsize)
        merge = self.soc.memory.map_seconds(merge_bytes)
        return (max(sides) + accelerators * self.soc.sync_seconds()
                + merge)

    def estimate_split_latency(self, graph: Graph, name: str,
                               split: float, batch: int = 1) -> float:
        """Estimated wall latency of one layer at CPU share ``split``
        (two-way CPU/GPU form)."""
        return self.estimate_shares_latency(
            graph, name, {"cpu": split, "gpu": 1.0 - split}, batch=batch)

    def _candidate_shares(self, graph: Graph,
                          name: str) -> "List[Dict[str, float]]":
        """Candidate share combinations for one layer."""
        layer = graph.layer(name)
        splittable = (layer.supports_channel_split
                      and self.config.enable_channel_distribution)
        candidates: "List[Dict[str, float]]" = []
        splits = (self.config.split_choices if splittable
                  else (0.0, 1.0))
        for split in splits:
            candidates.append({"cpu": split, "gpu": 1.0 - split})
        npu_eligible = (self.soc.has_npu
                        and layer.kind in NPU_KINDS)
        if npu_eligible:
            candidates.append({"npu": 1.0})
            if splittable:
                # Three-way combinations on the paper's quarter grid.
                grid = [s for s in self.config.split_choices
                        if 0.0 < s < 1.0]
                for cpu_share in [0.0] + grid:
                    for npu_share in grid:
                        if cpu_share + npu_share >= 1.0 - 1e-9:
                            continue
                        candidates.append({
                            "cpu": cpu_share, "npu": npu_share,
                            "gpu": 1.0 - cpu_share - npu_share})
                for cpu_share in grid:
                    candidates.append({"cpu": cpu_share,
                                       "npu": 1.0 - cpu_share})
        return candidates

    def choose_split(self, graph: Graph, name: str,
                     batch: int = 1) -> LayerAssignment:
        """Best assignment of one layer among the candidate splits."""
        best_shares: "Dict[str, float]" = {"cpu": 1.0}
        best_latency = float("inf")
        for shares in self._candidate_shares(graph, name):
            latency = self.estimate_shares_latency(graph, name, shares,
                                                   batch=batch)
            if latency < best_latency:
                best_latency = latency
                best_shares = shares
        return self._assignment_from_shares(name, best_shares)

    @staticmethod
    def _assignment_from_shares(name: str,
                                shares: "Dict[str, float]"
                                ) -> LayerAssignment:
        active = {resource: share for resource, share in shares.items()
                  if share > 0.0}
        if list(active) == ["cpu"]:
            return LayerAssignment.on_cpu(name)
        if list(active) == ["gpu"]:
            return LayerAssignment.on_gpu(name)
        if list(active) == ["npu"]:
            return LayerAssignment.on_npu(name)
        return LayerAssignment.cooperative(
            name, active.get("cpu", 0.0),
            npu_split=active.get("npu", 0.0))

    # -- planning -------------------------------------------------------------

    def plan(self, graph: Graph, batch: int = 1) -> ExecutionPlan:
        """Build a validated execution plan for ``graph``.

        With ``batch > 1`` every placement decision is costed at that
        batch size (weight traffic amortized, compute scaled), and the
        returned plan carries the batch so the executor times it
        consistently.  ``batch=1`` reproduces the original plans
        bit-for-bit.
        """
        branch_assignments: List[BranchAssignment] = []
        branch_layers: set = set()
        if self.config.enable_branch_distribution:
            for region in find_branch_regions(graph):
                if set(region.layer_names) & branch_layers:
                    continue    # overlaps an already-chosen region
                decision = self._decide_region(graph, region, batch)
                if decision is not None:
                    branch_assignments.append(decision)
                    branch_layers |= set(region.layer_names)
        assignments: Dict[str, LayerAssignment] = {}
        for name in graph.compute_layers():
            if name in branch_layers:
                continue
            assignments[name] = self.choose_split(graph, name,
                                                  batch=batch)
        plan = ExecutionPlan(graph_name=graph.name, policy=self.policy,
                             assignments=assignments,
                             branch_assignments=branch_assignments,
                             batch=batch)
        plan.validate(graph)
        return plan

    def _decide_region(self, graph: Graph, region: BranchRegion,
                       batch: int = 1) -> Optional[BranchAssignment]:
        """Branch-distribute ``region`` if it beats per-layer execution.

        Following the paper (Section 5), candidate mappings are judged
        by *measured* per-branch latency, not by the regression: the
        region is profiled in isolation on the simulated SoC -- our
        stand-in for the device -- both under the per-layer plan the
        partitioner would otherwise emit and under every
        branch-to-processor mapping.  The cheapest branch mapping wins
        only if it beats the per-layer plan.
        """
        import itertools

        from .executor import Executor

        if not any(region.branches):
            return None
        sub = region_subgraph(graph, region)
        executor = Executor(self.soc)
        per_layer = ExecutionPlan(
            graph_name=sub.name, policy=self.policy,
            assignments={name: self.choose_split(sub, name, batch=batch)
                         for name in sub.compute_layers()},
            batch=batch)
        per_layer_latency = executor.run(sub, per_layer).latency_s
        join_assignment = self.choose_split(sub, region.join,
                                            batch=batch)
        best_mapping: Optional[Tuple[str, ...]] = None
        best_latency = float("inf")
        # Prune with the analytic estimate, then measure the top
        # candidates exactly.
        profiles = profile_branches(
            sub, region, self.soc,
            lambda resource, work: self._busy(resource, work, batch))
        resources = tuple(self.soc.resources())
        candidates = sorted(
            (mapping for mapping in itertools.product(
                resources, repeat=len(region.branches))
             if estimate_mapping(profiles, mapping,
                                 self.soc.sync_seconds())
             != float("inf")),
            key=lambda m: estimate_mapping(profiles, m,
                                           self.soc.sync_seconds()))
        for mapping in candidates[:6]:
            plan = ExecutionPlan(
                graph_name=sub.name, policy=self.policy,
                assignments={region.join: join_assignment},
                branch_assignments=[BranchAssignment(region, mapping)],
                batch=batch)
            latency = executor.run(sub, plan).latency_s
            if latency < best_latency:
                best_latency = latency
                best_mapping = mapping
        if best_mapping is None or best_latency >= per_layer_latency:
            return None
        return BranchAssignment(region=region, mapping=best_mapping)
