"""The NN executor: runs an execution plan on the simulated SoC.

For every layer the executor performs two things in lockstep:

* **timing** -- reserves busy intervals on the simulated processor
  timeline, modelling asynchronous command issue, in-order queue
  semantics, CPU-accelerator synchronization, and zero-copy buffer
  mapping (the Section 6 implementation optimizations, both of which
  can be switched off for the ablation studies);
* **functional execution** (optional) -- computes the actual output
  numbers through :class:`LayerComputer` when input data is supplied,
  so correctness of the distribution mechanisms is checked by the same
  code path that is timed.

The GPU is always present; on NPU-equipped SoCs (the paper's Section
8.3 extension) a second in-order command queue drives the NPU, and
cooperative layers may split channels three ways.

Timing covers any batch size: batch-1 is the paper's
mobile-interactive latency metric and reproduces the original numbers
bit-for-bit, while batch-N runs amortize weight traffic and kernel
launches across the batch (the serving layer's throughput lever).
Batched functional execution feeds each sample through the same
batch-1 kernels and stacks the outputs, mirroring row-independent GEMM
hardware -- so a request's numbers never depend on what it was batched
with (numpy's BLAS would otherwise leak the batch shape into float
results through its blocking heuristics).

``run(..., compiled=True)`` swaps the per-layer functional
interpretation for a :class:`~repro.compile.program.CompiledProgram`
-- plans are lowered once (memoized alongside the LayerComputer memo)
into flat fused-kernel schedules whose outputs are byte-identical to
the interpreted path; the timing side is unchanged.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import PlanError
from ..nn import Graph, LayerWork
from ..nn.layers import Input
from ..quant.calibrate import CalibrationTable
from ..soc import (CommandQueue, CPU, EnergyModel, GPU, NPU, SoCSpec,
                   Timeline, kernel_cost, kernel_traffic_bytes)
from ..tensor import Tensor
from .compute import LayerComputer
from .distribution import split_layer_work_shares
from .metrics import InferenceResult, LayerTrace
from .plan import BranchAssignment, ExecutionPlan, LayerAssignment, Placement

#: Resources whose kernels are dispatched through a command queue.
_ACCELERATORS = (GPU, NPU)


class Executor:
    """Executes plans on one simulated SoC.

    Args:
        soc: the target SoC.
        zero_copy: share processor buffers via mapping (True, the
            paper's design) or copy explicitly (False, the ablation).
        async_issue: issue accelerator commands asynchronously so they
            overlap with CPU work (True) or block on each command
            (False).
        verify: run the static analyzers around every execution --
            plan verifier and dtype-flow linter before, race detector
            after.  Errors raise
            :class:`~repro.errors.VerificationError`; the full report
            (including warnings) is attached to the result's
            ``diagnostics`` field.
        op_caches: reuse one :class:`LayerComputer` (and therefore its
            packed-operand caches) across runs of the same
            (graph, policy, calibration) -- True, the default.  False
            restores the pre-cache behaviour of building a fresh
            computer per run; outputs are byte-identical either way.
        workers: worker threads for compiled functional execution.
            ``None`` or 1 keeps the serial loop; > 1 runs compiled
            programs through a
            :class:`~repro.compile.parallel.ParallelRuntime` over the
            program's step DAG -- byte-identical outputs, concurrent
            cooperative parts and branch paths.  Timing simulation is
            unaffected.
        pool: an existing :class:`~repro.runtime.workers.WorkerPool`
            to share (a serving fleet dispatches all replicas onto one
            pool); implies parallel compiled execution regardless of
            ``workers``.
        tuner: a :class:`~repro.tune.Tuner`; when set, every program
            this executor compiles goes through per-step kernel-variant
            autotuning (decisions cached in the tuner's
            :class:`~repro.tune.TuneCache`).  ``None`` compiles the
            reference lowering everywhere.
    """

    #: How many distinct (graph, policy, calibration) computers an
    #: executor keeps warm; oldest is dropped beyond that.
    _COMPUTER_MEMO_ENTRIES = 8

    def __init__(self, soc: SoCSpec, zero_copy: bool = True,
                 async_issue: bool = True, verify: bool = False,
                 op_caches: bool = True,
                 workers: Optional[int] = None,
                 pool=None, tuner=None) -> None:
        self.soc = soc
        self.zero_copy = zero_copy
        self.async_issue = async_issue
        self.verify = verify
        self.op_caches = op_caches
        self.tuner = tuner
        self.workers = 1 if workers is None else int(workers)
        if self.workers < 1:
            raise PlanError(f"workers must be >= 1, got {workers}")
        self._pool = pool
        self._runtime = None
        self._computers: "OrderedDict[Tuple[int, QuantizationPolicy, int], LayerComputer]" = OrderedDict()
        # Compiled programs, memoized with the same identity discipline
        # (and re-validated against weight-array identity on reuse).
        self._programs: ("OrderedDict[Tuple[int, int, int, int], "
                         "object]") = OrderedDict()

    def _run_program(self, program, x: np.ndarray) -> Dict[str, Tensor]:
        """Execute a compiled program, serial or worker-pooled.

        With ``workers == 1`` and no shared pool this is exactly
        ``program.run(x, keep="all")``; otherwise the program runs on
        the parallel runtime's step DAG, byte-identical by contract.
        """
        if self.workers <= 1 and self._pool is None:
            return program.run(x, keep="all")
        if self._runtime is None:
            # Imported lazily: repro.compile imports the analysis
            # package, which imports this one.
            from ..compile import ParallelRuntime
            self._runtime = ParallelRuntime(self.workers,
                                            pool=self._pool)
        return self._runtime.run(program, x, keep="all")

    def close(self) -> None:
        """Stop any privately owned worker pool (idempotent)."""
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def _computer_for(self, graph: Graph, policy,
                      calibration: Optional[CalibrationTable]
                      ) -> LayerComputer:
        """A LayerComputer for this run, memoized by object identity of
        graph and calibration (policies compare by value) so packed
        weight operands persist across inferences."""
        if not self.op_caches:
            return LayerComputer(graph, policy, calibration,
                                 enable_caches=False)
        key = (id(graph), policy, id(calibration))
        computer = self._computers.get(key)
        # Identity check via the stored references guards against id()
        # recycling of dead objects.
        if (computer is None or computer._graph is not graph
                or computer._calibration is not calibration):
            computer = LayerComputer(graph, policy, calibration)
            self._computers[key] = computer
        self._computers.move_to_end(key)
        while len(self._computers) > self._COMPUTER_MEMO_ENTRIES:
            self._computers.popitem(last=False)
        return computer

    def program_for(self, graph: Graph, plan: ExecutionPlan,
                    calibration: Optional[CalibrationTable],
                    batch: int, mechanism: str = "custom"):
        """The compiled program of (graph, plan, calibration, batch).

        Memoized by object identity like :meth:`_computer_for`, and
        identity-revalidated on every reuse: replacing a layer's
        weight arrays (``set_weights``) or passing a different plan
        object triggers recompilation, never a stale program.
        """
        # Imported lazily: repro.compile imports the analysis package,
        # which imports this one.
        from ..compile import compile_program
        key = (id(graph), id(plan), id(calibration), batch)
        program = self._programs.get(key)
        if (program is None or program.plan is not plan
                or not program.matches(graph, calibration)):
            program = compile_program(graph, plan,
                                      calibration=calibration,
                                      batch=batch, mechanism=mechanism,
                                      tuner=self.tuner)
            self._programs[key] = program
        self._programs.move_to_end(key)
        while len(self._programs) > self._COMPUTER_MEMO_ENTRIES:
            self._programs.popitem(last=False)
        return program

    def run(self, graph: Graph, plan: ExecutionPlan,
            x: Optional[np.ndarray] = None,
            calibration: Optional[CalibrationTable] = None,
            mechanism: str = "custom",
            batch: Optional[int] = None,
            compiled: bool = False,
            program=None) -> InferenceResult:
        """Execute ``graph`` according to ``plan``.

        Args:
            graph: the network (must match the plan).
            x: input batch for functional execution; omit for a
                timing-only run (required for weight-less graphs).
            calibration: per-layer activation ranges, required for
                functional execution under a quantized policy.
            mechanism: label recorded in the result.
            batch: batch size to time.  Defaults to the leading
                dimension of ``x`` when input data is given, else to
                the plan's batch.  A plan built for batch B > 1 only
                runs at batch B; a batch-1 plan runs at any batch (its
                splits are then reused, only the timing scales).
            compiled: compute the functional outputs through the
                compiled fused program instead of the per-layer
                interpreter (byte-identical results; timing is
                unaffected).  Ignored for timing-only runs.
            program: a pre-compiled
                :class:`~repro.compile.program.CompiledProgram` to run
                (implies ``compiled=True``); must match the graph,
                calibration, and batch.  When omitted, the executor
                compiles and memoizes one per (graph, plan,
                calibration, batch).

        Returns:
            The inference result with latency, energy, traces, and
            (for functional runs) all layer outputs.
        """
        plan.validate(graph)
        batch = self._resolve_batch(plan, x, batch)
        compiled = (compiled or program is not None) and x is not None
        report = (self._verify_static(graph, plan, calibration)
                  if self.verify else None)
        if compiled:
            if program is None:
                program = self.program_for(graph, plan, calibration,
                                           batch, mechanism=mechanism)
            elif program.batch != batch:
                raise PlanError(
                    f"program was compiled for batch {program.batch} "
                    f"but the run uses batch {batch}")
            elif not program.matches(graph, calibration):
                raise PlanError(
                    "compiled program is stale for this graph/"
                    "calibration; recompile it")
            if report is not None:
                from ..analysis.plan_verifier import (
                    verify_program, verify_tuned_variants)
                report.extend(verify_program(graph, plan, program))
                report.extend(verify_tuned_variants(graph, plan,
                                                    program))
                report.raise_if_errors(
                    f"compiled program for {graph.name!r} on "
                    f"{self.soc.name}")
        # Compiled runs drive the timing model without the per-layer
        # interpreter (x withheld from the run state), then attach the
        # program's outputs to the result.
        run_state = _RunState(self, graph, plan,
                              None if compiled else x, calibration,
                              batch)
        run_state.execute()
        result = run_state.result(mechanism)
        if compiled:
            result.outputs = self._run_program(program, x)
        if report is not None:
            self._verify_timeline(graph, plan, result, report)
        return result

    @staticmethod
    def _resolve_batch(plan: ExecutionPlan, x: Optional[np.ndarray],
                       batch: Optional[int]) -> int:
        """The effective batch size of one run (validated)."""
        if batch is None:
            batch = int(x.shape[0]) if x is not None else plan.batch
        if batch < 1:
            raise PlanError(f"batch must be >= 1, got {batch}")
        if x is not None and x.shape[0] != batch:
            raise PlanError(
                f"input has batch {x.shape[0]} but the run was asked "
                f"for batch {batch}")
        if plan.batch not in (1, batch):
            raise PlanError(
                f"plan was partitioned for batch {plan.batch} but the "
                f"run uses batch {batch}; rebuild the plan (batch-keyed "
                "plan-cache entries must never be mixed)")
        return batch

    def _verify_static(self, graph: Graph, plan: ExecutionPlan,
                       calibration: Optional[CalibrationTable]):
        """Pre-execution verification (verify=True); fails fast on
        errors so a broken plan never reaches the timeline."""
        # Imported lazily: repro.analysis imports the runtime package.
        from ..analysis.dtypeflow import DtypeFlowLinter
        from ..analysis.plan_verifier import PlanVerifier
        report = PlanVerifier(self.soc).verify(graph, plan)
        report.extend(DtypeFlowLinter().lint(graph, plan.policy,
                                             calibration))
        report.raise_if_errors(
            f"plan for {graph.name!r} on {self.soc.name}")
        return report

    def _verify_timeline(self, graph: Graph, plan: ExecutionPlan,
                         result: InferenceResult, report) -> None:
        from ..analysis.races import TimelineRaceDetector
        report.extend(TimelineRaceDetector(self.soc).check(
            graph, plan, result.timeline))
        report.raise_if_errors(
            f"timeline of {graph.name!r} on {self.soc.name}")
        result.diagnostics = report


class _RunState:
    """Mutable state of one execution (timeline, values, traces)."""

    def __init__(self, executor: Executor, graph: Graph,
                 plan: ExecutionPlan, x: Optional[np.ndarray],
                 calibration: Optional[CalibrationTable],
                 batch: int = 1) -> None:
        self.executor = executor
        self.soc = executor.soc
        self.graph = graph
        self.plan = plan
        self.batch = batch
        self.timeline = Timeline()
        self.queues: Dict[str, CommandQueue] = {
            GPU: CommandQueue(self.timeline, self.soc.gpu,
                              executor.async_issue, resource=GPU),
        }
        if self.soc.has_npu:
            self.queues[NPU] = CommandQueue(
                self.timeline, self.soc.npu, executor.async_issue,
                resource=NPU)
        self.policy = plan.policy
        self.computer: Optional[LayerComputer] = None
        # One value dict per sample: the batched functional path runs
        # every sample through the same batch-1 kernels (hardware GEMM
        # is row-independent; numpy's BLAS blocking is not, so a fused
        # batch matmul would make float results depend on the batch).
        # Batch-1 keeps the single dict it always had.
        self.sample_values: List[Dict[str, Tensor]] = []
        self.sample_inputs: List[np.ndarray] = []
        if x is not None:
            self.computer = executor._computer_for(graph, plan.policy,
                                                   calibration)
            self.computer.begin_inference()
            if batch == 1:
                self.sample_inputs = [x]
            else:
                self.sample_inputs = [x[i:i + 1] for i in range(batch)]
            self.sample_values = [{} for _ in self.sample_inputs]
        self.input_data = x
        self.ready: Dict[str, float] = {}
        self.producers: Dict[str, Set[str]] = {}
        self.traces: List[LayerTrace] = []
        self.traffic = 0.0
        self.shapes = graph.infer_shapes()
        self._region_of: Dict[str, BranchAssignment] = {}
        for branch_assignment in plan.branch_assignments:
            for name in branch_assignment.region.layer_names:
                self._region_of[name] = branch_assignment
        self._done_regions: Set[int] = set()

    # -- orchestration --------------------------------------------------------

    def execute(self) -> None:
        """Run all layers in topological order."""
        for name in self.graph.topological_order():
            layer = self.graph.layer(name)
            if isinstance(layer, Input):
                self._seed_input(name)
                continue
            region = self._region_of.get(name)
            if region is not None:
                if id(region) not in self._done_regions:
                    self._execute_region(region)
                    self._done_regions.add(id(region))
                continue
            self._execute_layer(name, self.plan.assignments[name])
        self.timeline.validate()

    def result(self, mechanism: str) -> InferenceResult:
        """Package the completed run."""
        energy = EnergyModel(self.soc).energy(self.timeline, self.traffic)
        return InferenceResult(
            graph_name=self.graph.name,
            soc_name=self.soc.name,
            policy_name=self.policy.name,
            mechanism=mechanism,
            latency_s=self.timeline.makespan(),
            energy=energy,
            timeline=self.timeline,
            traces=self.traces,
            traffic_bytes=self.traffic,
            outputs=self._outputs(),
            batch=self.batch,
        )

    def _outputs(self) -> Optional[Dict[str, Tensor]]:
        """Layer outputs, stacked back along the batch axis."""
        if self.computer is None:
            return None
        if self.batch == 1:
            return dict(self.sample_values[0])
        from ..tensor import concat_channels
        return {name: concat_channels(
                    [values[name] for values in self.sample_values],
                    axis=0)
                for name in self.sample_values[0]}

    # -- building blocks ------------------------------------------------------

    def _seed_input(self, name: str) -> None:
        self.ready[name] = 0.0
        self.producers[name] = {CPU}   # host data arrives CPU-side
        if self.computer is not None:
            for values, sample in zip(self.sample_values,
                                      self.sample_inputs):
                values[name] = self.computer.input_tensor(name, sample)

    def _layer_work(self, name: str) -> LayerWork:
        return self.graph.layer_work(name)

    def _activation_bytes(self, name: str) -> float:
        """Storage bytes of one layer's output at the run's batch size
        (the graph's declared leading dimension is replaced by it)."""
        shape = self.shapes[name]
        elements = int(np.prod(shape[1:])) * self.batch
        return float(elements * self.policy.activation_storage.itemsize)

    def _deps_ready(self, name: str) -> Tuple[float, Set[str]]:
        """(data-ready time, union of producer resources) of inputs."""
        inputs = self.graph.inputs_of(name)
        ready = max((self.ready[p] for p in inputs), default=0.0)
        resources: Set[str] = set()
        for producer in inputs:
            resources |= self.producers[producer]
        return ready, resources

    def _transition_to_cpu(self, name: str, data_ready: float,
                           input_resources: Set[str]) -> None:
        """Charge accelerator->CPU handoff: event sync + map/copy."""
        foreign = input_resources & set(_ACCELERATORS)
        if not foreign:
            return
        nbytes = sum(self._activation_bytes(p)
                     for p in self.graph.inputs_of(name)
                     if self.producers[p] & foreign)
        self.timeline.wait_until(CPU, data_ready)
        self.timeline.reserve(CPU, self.soc.sync_seconds(), name, "sync")
        self._charge_buffer_handoff(name, nbytes)

    def _transition_to_accel(self, name: str,
                             input_resources: Set[str],
                             target: str) -> None:
        """Charge handoff into an accelerator: cache flush / copy of
        data the accelerator did not produce itself."""
        foreign = input_resources - {target}
        if not foreign:
            return
        nbytes = sum(self._activation_bytes(p)
                     for p in self.graph.inputs_of(name)
                     if self.producers[p] - {target})
        self._charge_buffer_handoff(name, nbytes)

    def _charge_buffer_handoff(self, name: str, nbytes: float) -> None:
        memory = self.soc.memory
        if self.executor.zero_copy:
            self.timeline.reserve(CPU, memory.map_seconds(nbytes), name,
                                  "map")
        else:
            self.timeline.reserve(CPU, memory.copy_seconds(nbytes), name,
                                  "copy")
            self.traffic += 2.0 * nbytes   # copy reads and rewrites DRAM

    # -- layer execution ------------------------------------------------------

    def _execute_layer(self, name: str,
                       assignment: LayerAssignment) -> None:
        data_ready, input_resources = self._deps_ready(name)
        if assignment.placement is Placement.CPU:
            self._run_on_cpu(name, data_ready, input_resources)
        elif assignment.placement is Placement.GPU:
            self._run_on_accel(name, GPU, data_ready, input_resources)
        elif assignment.placement is Placement.NPU:
            self._run_on_accel(name, NPU, data_ready, input_resources)
        else:
            self._run_cooperative(name, assignment, data_ready,
                                  input_resources)

    def _cost(self, resource: str, work: LayerWork):
        return kernel_cost(self.soc.processor(resource), self.soc.memory,
                           work, self.policy.compute_dtype(resource),
                           self.policy.activation_storage,
                           self.policy.param_storage(resource),
                           batch=self.batch)

    def _run_on_cpu(self, name: str, data_ready: float,
                    input_resources: Set[str]) -> float:
        self._transition_to_cpu(name, data_ready, input_resources)
        work = self._layer_work(name)
        cost = self._cost(CPU, work)
        segment = self.timeline.reserve(
            CPU, cost.total_s, name, "compute",
            dtype=self.policy.cpu_compute, earliest=data_ready)
        self.traffic += kernel_traffic_bytes(
            work, self.policy.activation_storage,
            self.policy.cpu_param_storage, batch=self.batch)
        self.ready[name] = segment.end
        self.producers[name] = {CPU}
        self._compute_value(name, "cpu")
        self._record(name, "cpu", 1.0, data_ready, segment.end,
                     cpu_busy=cost.total_s, gpu_busy=0.0)
        return segment.end

    def _run_on_accel(self, name: str, resource: str, data_ready: float,
                      input_resources: Set[str]) -> float:
        if resource not in self.queues:
            raise PlanError(
                f"layer {name!r} targets {resource} but "
                f"{self.soc.name} has no such processor")
        self._transition_to_accel(name, input_resources, resource)
        work = self._layer_work(name)
        cost = self._cost(resource, work)
        event = self.queues[resource].enqueue(
            name, cost.busy_s, self.policy.compute_dtype(resource),
            ready=data_ready)
        self.traffic += kernel_traffic_bytes(
            work, self.policy.activation_storage,
            self.policy.param_storage(resource), batch=self.batch)
        self.ready[name] = event.completed_at
        self.producers[name] = {resource}
        self._compute_value(name, resource)
        gpu_busy = cost.total_s if resource == GPU else 0.0
        self._record(name, resource, 0.0, data_ready,
                     event.completed_at, cpu_busy=0.0, gpu_busy=gpu_busy)
        return event.completed_at

    def _run_cooperative(self, name: str, assignment: LayerAssignment,
                         data_ready: float,
                         input_resources: Set[str]) -> None:
        shares = assignment.shares()
        for resource in shares:
            if resource in _ACCELERATORS and resource not in self.queues:
                raise PlanError(
                    f"layer {name!r} splits onto {resource} but "
                    f"{self.soc.name} has no such processor")
        self._transition_to_cpu(name, data_ready, input_resources)
        works = split_layer_work_shares(self.graph, name, shares)
        costs = {resource: self._cost(resource, work)
                 for resource, work in works.items()}
        # Issue accelerator commands first (asynchronously), then
        # compute the CPU portion, then wait on the completion events
        # -- the paper's overlap strategy (Section 6).
        events = []
        for resource in _ACCELERATORS:
            if resource in works:
                events.append((resource, self.queues[resource].enqueue(
                    name, costs[resource].busy_s,
                    self.policy.compute_dtype(resource),
                    ready=data_ready)))
        end = data_ready
        cpu_busy = 0.0
        if CPU in works:
            cpu_segment = self.timeline.reserve(
                CPU, costs[CPU].total_s, name, "compute",
                dtype=self.policy.cpu_compute, earliest=data_ready)
            end = cpu_segment.end
            cpu_busy = costs[CPU].total_s
        for resource, event in events:
            end = max(end, self.queues[resource].wait(
                event, self.soc.sync_seconds()))
        for resource, work in works.items():
            self.traffic += kernel_traffic_bytes(
                work, self.policy.activation_storage,
                self.policy.param_storage(resource), batch=self.batch)
        self.ready[name] = end
        self.producers[name] = set(works)
        if self.computer is not None:
            for values in self.sample_values:
                inputs = [values[p] for p in self.graph.inputs_of(name)]
                values[name] = self.computer.run_cooperative_shares(
                    name, inputs, shares)
        self._record(name, "cooperative", assignment.split, data_ready,
                     end, cpu_busy=cpu_busy,
                     gpu_busy=costs[GPU].total_s if GPU in costs else 0.0)

    def _compute_value(self, name: str, resource: str) -> None:
        if self.computer is None:
            return
        for values in self.sample_values:
            inputs = [values[p] for p in self.graph.inputs_of(name)]
            values[name] = self.computer.run_full(name, inputs, resource)

    def _record(self, name: str, placement: str, split: float,
                start: float, end: float, cpu_busy: float,
                gpu_busy: float) -> None:
        work = self._layer_work(name)
        self.traces.append(LayerTrace(
            layer=name, placement=placement, split=split, start_s=start,
            end_s=end, cpu_busy_s=cpu_busy, gpu_busy_s=gpu_busy,
            traffic_bytes=kernel_traffic_bytes(
                work, self.policy.activation_storage,
                self.policy.activation_storage, batch=self.batch)))

    # -- branch-distributed regions -------------------------------------------

    def _execute_region(self, branch_assignment: BranchAssignment) -> None:
        """Run a fork/join region with whole branches on single
        processors, in parallel (Section 5).

        Accelerator branches are enqueued first so their commands drain
        while the CPU executes its own branches; the join's usual
        accelerator->CPU transition logic performs the final
        synchronization.
        """
        region = branch_assignment.region
        fork_ready = self.ready[region.fork]
        fork_resources = self.producers[region.fork]
        pairs = list(zip(region.branches, branch_assignment.mapping))
        for accel in _ACCELERATORS:
            if any(target == accel for _, target in pairs):
                self._transition_to_accel(region.fork, fork_resources,
                                          accel)
        for branch, target in pairs:
            if target == CPU:
                continue
            prev = fork_ready
            for name in branch:
                prev = self._run_branch_layer_accel(name, target, prev)
        for branch, target in pairs:
            if target != CPU:
                continue
            if fork_resources & set(_ACCELERATORS):
                self._transition_to_cpu(region.fork, fork_ready,
                                        fork_resources)
            prev = fork_ready
            for name in branch:
                prev = self._run_branch_layer_cpu(name, prev)

    def _run_branch_layer_accel(self, name: str, resource: str,
                                prev: float) -> float:
        if resource not in self.queues:
            raise PlanError(
                f"branch layer {name!r} targets {resource} but "
                f"{self.soc.name} has no such processor")
        work = self._layer_work(name)
        cost = self._cost(resource, work)
        event = self.queues[resource].enqueue(
            name, cost.busy_s, self.policy.compute_dtype(resource),
            ready=prev)
        self.traffic += kernel_traffic_bytes(
            work, self.policy.activation_storage,
            self.policy.param_storage(resource), batch=self.batch)
        self.ready[name] = event.completed_at
        self.producers[name] = {resource}
        self._compute_value(name, resource)
        gpu_busy = cost.total_s if resource == GPU else 0.0
        self._record(name, resource, 0.0, prev, event.completed_at,
                     cpu_busy=0.0, gpu_busy=gpu_busy)
        return event.completed_at

    def _run_branch_layer_cpu(self, name: str, prev: float) -> float:
        work = self._layer_work(name)
        cost = self._cost(CPU, work)
        segment = self.timeline.reserve(
            CPU, cost.total_s, name, "compute",
            dtype=self.policy.cpu_compute, earliest=prev)
        self.traffic += kernel_traffic_bytes(
            work, self.policy.activation_storage,
            self.policy.cpu_param_storage, batch=self.batch)
        self.ready[name] = segment.end
        self.producers[name] = {CPU}
        self._compute_value(name, "cpu")
        self._record(name, "cpu", 1.0, prev, segment.end,
                     cpu_busy=cost.total_s, gpu_busy=0.0)
        return segment.end
