"""A shared execution-plan (and compiled-program) cache.

Partitioning is by far the most expensive step of an inference request
(the partitioner sweeps candidate splits per layer and profiles branch
regions), yet its output depends only on the *configuration* -- the
model, the SoC, the execution mechanism, and the quantization policy.
The serving layer therefore shares one :class:`PlanCache` across all
devices of a fleet so the partitioner runs once per configuration
instead of once per request; :class:`~repro.runtime.mulayer.MuLayer`
uses the same cache type for its per-graph memoization.

Next to each plan the cache can hold the plan's **compiled programs**
(:class:`~repro.compile.program.CompiledProgram`), keyed by the same
:class:`PlanKey` plus the run batch they were specialized for.
Programs live and die with their plan: storing a new plan under a key
or evicting the key drops its programs, and a lookup that passes the
current graph/calibration identity-validates the entry (a stale
program -- ``set_weights`` installed new arrays -- is dropped and
reported as a miss), the same discipline the packed-operand caches
apply.

The cache is thread-safe (the serving simulator's fleet shares it
across device contexts, and warm-up may populate it concurrently) and
optionally bounded: with ``max_entries`` set it evicts the least
recently used plan, which keeps a long-lived serving process from
accumulating plans for configurations it no longer sees.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from ..quant.calibrate import CalibrationTable
from .plan import ExecutionPlan

if TYPE_CHECKING:   # pragma: no cover - typing only (avoids a cycle)
    from ..compile.program import CompiledProgram
    from ..nn import Graph


def _drop_programs(programs: "OrderedDict[Tuple[PlanKey, int], "
                             "CompiledProgram]",
                   key: "PlanKey") -> int:
    """Drop every program attached to ``key``; returns the count.

    Mutates the mapping it is handed; callers must hold the cache
    lock, which is why this lives outside the class -- the linter can
    then see every write to cache state happen under ``with
    self._lock``.
    """
    dropped = [pk for pk in programs if pk[0] == key]
    for pk in dropped:
        del programs[pk]
    return len(dropped)


@dataclasses.dataclass(frozen=True)
class PlanKey:
    """Identity of one plannable configuration.

    Attributes:
        model: graph name the plan was built for.
        soc: SoC name.
        mechanism: ``"mulayer"``, ``"cpu"``, ``"gpu"``, ``"npu"``, or
            ``"l2p"``.
        policy: name of the quantization policy in force (distinct
            dtype policies must never share a plan).
        batch: the batch size the plan was partitioned for.  Plans for
            different batch sizes have different split ratios and
            timings, so they never share a cache entry; the default
            keeps all pre-batching keys unchanged.
    """

    model: str
    soc: str
    mechanism: str
    policy: str
    batch: int = 1


class PlanCache:
    """Maps :class:`PlanKey` to built plans, counting hits and misses.

    Args:
        max_entries: optional LRU bound; None (the default) never
            evicts, preserving the original unbounded behaviour.  The
            same bound applies independently to the compiled-program
            side table.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.max_entries = max_entries
        self._plans: "OrderedDict[PlanKey, ExecutionPlan]" = OrderedDict()
        self._programs: ("OrderedDict[Tuple[PlanKey, int], "
                         "CompiledProgram]") = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.program_hits = 0
        self.program_misses = 0
        self.program_evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._plans

    def get(self, key: PlanKey) -> Optional[ExecutionPlan]:
        """The cached plan for ``key`` (counts a hit or a miss)."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
            else:
                self.hits += 1
                self._plans.move_to_end(key)
            return plan

    def put(self, key: PlanKey, plan: ExecutionPlan) -> None:
        """Store ``plan`` under ``key``, evicting the least recently
        used entry beyond ``max_entries``.

        Replacing a key's plan (or evicting one) also drops every
        compiled program attached to that key -- a program lowers one
        specific plan and must never outlive it.
        """
        with self._lock:
            replaced = key in self._plans
            self._plans[key] = plan
            self._plans.move_to_end(key)
            if replaced:
                self.program_evictions += _drop_programs(self._programs,
                                                         key)
            if (self.max_entries is not None
                    and len(self._plans) > self.max_entries):
                evicted_key, _ = self._plans.popitem(last=False)
                self.evictions += 1
                self.program_evictions += _drop_programs(self._programs,
                                                         evicted_key)

    def get_or_build(self, key: PlanKey,
                     builder: Callable[[], ExecutionPlan]
                     ) -> ExecutionPlan:
        """The cached plan, building and storing it on a miss.

        The builder runs outside the lock (partitioning is slow);
        concurrent misses on the same key may build twice, and the
        last write wins -- plans for one key are interchangeable.
        """
        plan = self.get(key)
        if plan is None:
            plan = builder()
            self.put(key, plan)
        return plan

    # -- compiled programs ---------------------------------------------------

    def program_count(self) -> int:
        """Number of compiled programs currently cached."""
        with self._lock:
            return len(self._programs)

    def get_program(self, key: PlanKey, batch: int,
                    graph: "Optional[Graph]" = None,
                    calibration: Optional[CalibrationTable] = None
                    ) -> "Optional[CompiledProgram]":
        """The compiled program for (``key``, ``batch``), if current.

        When ``graph`` is given the entry is identity-validated
        against it (and against ``calibration``): a stale program --
        the graph object changed, ``set_weights`` installed new
        weight arrays, or the calibration table differs -- is dropped
        and the lookup counts as a miss, exactly like the packed-
        operand caches' source-identity validation.
        """
        with self._lock:
            program = self._programs.get((key, batch))
            if program is not None and graph is not None \
                    and not program.matches(graph, calibration):
                del self._programs[(key, batch)]
                self.program_evictions += 1
                program = None
            if program is None:
                self.program_misses += 1
            else:
                self.program_hits += 1
                self._programs.move_to_end((key, batch))
            return program

    def put_program(self, key: PlanKey, batch: int,
                    program: "CompiledProgram") -> None:
        """Attach a compiled program to its plan's key.

        Requires the plan to be cached (a program must never outlive
        or predate its plan); evicts the least recently used program
        beyond ``max_entries``.
        """
        with self._lock:
            if key not in self._plans:
                raise KeyError(
                    f"cannot cache a program for {key}: no plan is "
                    "cached under that key")
            self._programs[(key, batch)] = program
            self._programs.move_to_end((key, batch))
            if (self.max_entries is not None
                    and len(self._programs) > self.max_entries):
                self._programs.popitem(last=False)
                self.program_evictions += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when cold)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    @property
    def program_hit_rate(self) -> float:
        """Fraction of program lookups served from the cache."""
        lookups = self.program_hits + self.program_misses
        return self.program_hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters as a JSON-friendly dict."""
        with self._lock:
            entries = float(len(self._plans))
            program_entries = float(len(self._programs))
        return {
            "entries": entries,
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "evictions": float(self.evictions),
            "program_entries": program_entries,
            "program_hits": float(self.program_hits),
            "program_misses": float(self.program_misses),
            "program_hit_rate": self.program_hit_rate,
            "program_evictions": float(self.program_evictions),
        }
