"""A shared execution-plan cache.

Partitioning is by far the most expensive step of an inference request
(the partitioner sweeps candidate splits per layer and profiles branch
regions), yet its output depends only on the *configuration* -- the
model, the SoC, the execution mechanism, and the quantization policy.
The serving layer therefore shares one :class:`PlanCache` across all
devices of a fleet so the partitioner runs once per configuration
instead of once per request; :class:`~repro.runtime.mulayer.MuLayer`
uses the same cache type for its per-graph memoization.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from .plan import ExecutionPlan


@dataclasses.dataclass(frozen=True)
class PlanKey:
    """Identity of one plannable configuration.

    Attributes:
        model: graph name the plan was built for.
        soc: SoC name.
        mechanism: ``"mulayer"``, ``"cpu"``, ``"gpu"``, ``"npu"``, or
            ``"l2p"``.
        policy: name of the quantization policy in force (distinct
            dtype policies must never share a plan).
    """

    model: str
    soc: str
    mechanism: str
    policy: str


class PlanCache:
    """Maps :class:`PlanKey` to built plans, counting hits and misses."""

    def __init__(self) -> None:
        self._plans: Dict[PlanKey, ExecutionPlan] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        return key in self._plans

    def get(self, key: PlanKey) -> Optional[ExecutionPlan]:
        """The cached plan for ``key`` (counts a hit or a miss)."""
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
        else:
            self.hits += 1
        return plan

    def put(self, key: PlanKey, plan: ExecutionPlan) -> None:
        """Store ``plan`` under ``key`` (no eviction; plans are tiny)."""
        self._plans[key] = plan

    def get_or_build(self, key: PlanKey,
                     builder: Callable[[], ExecutionPlan]
                     ) -> ExecutionPlan:
        """The cached plan, building and storing it on a miss."""
        plan = self.get(key)
        if plan is None:
            plan = builder()
            self.put(key, plan)
        return plan

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when cold)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters as a JSON-friendly dict."""
        return {
            "entries": float(len(self._plans)),
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
        }
