"""A shared execution-plan cache.

Partitioning is by far the most expensive step of an inference request
(the partitioner sweeps candidate splits per layer and profiles branch
regions), yet its output depends only on the *configuration* -- the
model, the SoC, the execution mechanism, and the quantization policy.
The serving layer therefore shares one :class:`PlanCache` across all
devices of a fleet so the partitioner runs once per configuration
instead of once per request; :class:`~repro.runtime.mulayer.MuLayer`
uses the same cache type for its per-graph memoization.

The cache is thread-safe (the serving simulator's fleet shares it
across device contexts, and warm-up may populate it concurrently) and
optionally bounded: with ``max_entries`` set it evicts the least
recently used plan, which keeps a long-lived serving process from
accumulating plans for configurations it no longer sees.
"""

from __future__ import annotations

import dataclasses
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional

from .plan import ExecutionPlan


@dataclasses.dataclass(frozen=True)
class PlanKey:
    """Identity of one plannable configuration.

    Attributes:
        model: graph name the plan was built for.
        soc: SoC name.
        mechanism: ``"mulayer"``, ``"cpu"``, ``"gpu"``, ``"npu"``, or
            ``"l2p"``.
        policy: name of the quantization policy in force (distinct
            dtype policies must never share a plan).
        batch: the batch size the plan was partitioned for.  Plans for
            different batch sizes have different split ratios and
            timings, so they never share a cache entry; the default
            keeps all pre-batching keys unchanged.
    """

    model: str
    soc: str
    mechanism: str
    policy: str
    batch: int = 1


class PlanCache:
    """Maps :class:`PlanKey` to built plans, counting hits and misses.

    Args:
        max_entries: optional LRU bound; None (the default) never
            evicts, preserving the original unbounded behaviour.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        self.max_entries = max_entries
        self._plans: "OrderedDict[PlanKey, ExecutionPlan]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: PlanKey) -> bool:
        with self._lock:
            return key in self._plans

    def get(self, key: PlanKey) -> Optional[ExecutionPlan]:
        """The cached plan for ``key`` (counts a hit or a miss)."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
            else:
                self.hits += 1
                self._plans.move_to_end(key)
            return plan

    def put(self, key: PlanKey, plan: ExecutionPlan) -> None:
        """Store ``plan`` under ``key``, evicting the least recently
        used entry beyond ``max_entries``."""
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            if (self.max_entries is not None
                    and len(self._plans) > self.max_entries):
                self._plans.popitem(last=False)
                self.evictions += 1

    def get_or_build(self, key: PlanKey,
                     builder: Callable[[], ExecutionPlan]
                     ) -> ExecutionPlan:
        """The cached plan, building and storing it on a miss.

        The builder runs outside the lock (partitioning is slow);
        concurrent misses on the same key may build twice, and the
        last write wins -- plans for one key are interchangeable.
        """
        plan = self.get(key)
        if plan is None:
            plan = builder()
            self.put(key, plan)
        return plan

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when cold)."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters as a JSON-friendly dict."""
        with self._lock:
            entries = float(len(self._plans))
        return {
            "entries": entries,
            "hits": float(self.hits),
            "misses": float(self.misses),
            "hit_rate": self.hit_rate,
            "evictions": float(self.evictions),
        }
