"""Processor-friendly quantization policies (Section 4.2).

A :class:`QuantizationPolicy` fixes, for one execution, which data type
each processor computes in and which data types tensors are stored in.
The paper's processor-friendly policy is:

* **storage**: everything (input, filters, output) lives in memory as
  QUInt8 to minimize data movement;
* **CPU compute**: QUInt8, processed natively by the vector ALUs
  (Figure 9a);
* **GPU compute**: F16 -- the GPU loads QUInt8 and converts on the fly
  (Figure 9b), except filters, which the executor dequantizes to F16
  once at upload time (Section 6), hence the separate
  ``gpu_param_storage``;
* both processors requantize their outputs back to QUInt8 using the
  pre-trained output range.

Uniform policies (same dtype everywhere) express the baselines of
Figures 8 and 16.
"""

from __future__ import annotations

import dataclasses

from ..tensor import DType


@dataclasses.dataclass(frozen=True)
class QuantizationPolicy:
    """Data types used for compute and storage during one execution.

    Attributes:
        name: short label used in reports.
        cpu_compute: ALU data type on the CPU.
        gpu_compute: ALU data type on the GPU.
        activation_storage: in-memory type of activations.
        cpu_param_storage: in-memory type of CPU-side filters.
        gpu_param_storage: in-memory type of GPU-side filters.
    """

    name: str
    cpu_compute: DType
    gpu_compute: DType
    activation_storage: DType
    cpu_param_storage: DType
    gpu_param_storage: DType

    def compute_dtype(self, resource: str) -> DType:
        """Compute dtype for ``"cpu"``, ``"gpu"``, or ``"npu"``.

        NPUs are fixed-function integer engines, so their compute type
        is always QUInt8 -- the "NPU-friendly quantization scheme" of
        the paper's Section 8.3 (8-bit linear, as on the TPU).
        """
        if resource == "cpu":
            return self.cpu_compute
        if resource == "npu":
            return DType.QUINT8
        return self.gpu_compute

    def param_storage(self, resource: str) -> DType:
        """Filter storage dtype for ``"cpu"``, ``"gpu"``, or ``"npu"``."""
        if resource == "cpu":
            return self.cpu_param_storage
        if resource == "npu":
            return DType.QUINT8
        return self.gpu_param_storage

    @property
    def is_quantized(self) -> bool:
        """True when activations are stored as QUInt8 (requires a
        calibration table for functional execution)."""
        return self.activation_storage is DType.QUINT8


#: The paper's processor-friendly quantization (Section 4.2).
PROCESSOR_FRIENDLY = QuantizationPolicy(
    name="pfq",
    cpu_compute=DType.QUINT8,
    gpu_compute=DType.F16,
    activation_storage=DType.QUINT8,
    cpu_param_storage=DType.QUINT8,
    gpu_param_storage=DType.F16,
)


def uniform_policy(dtype: DType) -> QuantizationPolicy:
    """A policy that computes and stores everything in ``dtype``."""
    return QuantizationPolicy(
        name=str(dtype),
        cpu_compute=dtype,
        gpu_compute=dtype,
        activation_storage=dtype,
        cpu_param_storage=dtype,
        gpu_param_storage=dtype,
    )


#: Uniform baseline policies keyed by dtype, as swept in Figure 8.
UNIFORM_F32 = uniform_policy(DType.F32)
UNIFORM_F16 = uniform_policy(DType.F16)
UNIFORM_QUINT8 = uniform_policy(DType.QUINT8)
