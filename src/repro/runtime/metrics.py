"""Results of a simulated inference: latency, energy, per-layer traces."""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, TYPE_CHECKING

from ..soc import EnergyBreakdown, Timeline
from ..tensor import Tensor

if TYPE_CHECKING:   # pragma: no cover - import cycle guard
    from ..analysis.diagnostics import Report


@dataclasses.dataclass(frozen=True)
class LayerTrace:
    """Execution record of one layer.

    Attributes:
        layer: layer name.
        placement: ``"cpu"``, ``"gpu"``, or ``"cooperative"``.
        split: the CPU's channel share.
        start_s / end_s: simulated start and completion times.
        cpu_busy_s / gpu_busy_s: busy time contributed per processor.
        traffic_bytes: DRAM traffic of the layer's kernels.
    """

    layer: str
    placement: str
    split: float
    start_s: float
    end_s: float
    cpu_busy_s: float
    gpu_busy_s: float
    traffic_bytes: float

    @property
    def latency_s(self) -> float:
        """Wall-clock span of the layer."""
        return self.end_s - self.start_s

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation of the trace."""
        return {
            "layer": self.layer,
            "placement": self.placement,
            "split": self.split,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "latency_s": self.latency_s,
            "cpu_busy_s": self.cpu_busy_s,
            "gpu_busy_s": self.gpu_busy_s,
            "traffic_bytes": self.traffic_bytes,
        }


@dataclasses.dataclass
class InferenceResult:
    """Everything produced by one simulated inference.

    Attributes:
        graph_name / soc_name / policy_name / mechanism: identity of
            the run.
        latency_s: end-to-end makespan of the inference.
        energy: the energy breakdown.
        timeline: the full busy-interval ledger.
        traces: per-layer execution records, in execution order.
        traffic_bytes: total DRAM traffic.
        outputs: layer outputs in storage representation (present only
            for functional runs).
        diagnostics: the verification report (present only when the
            executor ran with ``verify=True``; contains at most
            warnings/infos, since errors raise instead).
        batch: the batch size of the inference; ``latency_s`` is the
            makespan of the whole batch, so the per-sample latency is
            ``latency_s / batch``.
    """

    graph_name: str
    soc_name: str
    policy_name: str
    mechanism: str
    latency_s: float
    energy: EnergyBreakdown
    timeline: Timeline
    traces: List[LayerTrace]
    traffic_bytes: float
    outputs: Optional[Dict[str, Tensor]] = None
    diagnostics: Optional["Report"] = None
    batch: int = 1

    @property
    def latency_ms(self) -> float:
        """End-to-end latency in milliseconds."""
        return self.latency_s * 1e3

    @property
    def per_sample_latency_s(self) -> float:
        """Batch makespan divided by the batch size."""
        return self.latency_s / self.batch

    @property
    def energy_mj(self) -> float:
        """Total energy in millijoules."""
        return self.energy.total_mj

    def trace_of(self, layer: str) -> LayerTrace:
        """The trace of one layer.

        Raises:
            KeyError: if the layer was not executed.
        """
        for trace in self.traces:
            if trace.layer == layer:
                return trace
        raise KeyError(f"no trace for layer {layer!r}")

    def to_dict(self, include_traces: bool = True) -> Dict[str, object]:
        """JSON-friendly representation of the result.

        Covers identity, latency, energy, and traffic; per-layer traces
        are included unless ``include_traces`` is False.  Functional
        outputs and the raw timeline are deliberately omitted (they are
        bulky and not serializable as-is); diagnostics, when present,
        serialize through their own ``to_dict``.
        """
        data: Dict[str, object] = {
            "graph": self.graph_name,
            "soc": self.soc_name,
            "policy": self.policy_name,
            "mechanism": self.mechanism,
            "batch": self.batch,
            "latency_s": self.latency_s,
            "latency_ms": self.latency_ms,
            "energy_mj": self.energy_mj,
            "energy": {
                "dynamic_j": self.energy.dynamic_j,
                "idle_j": self.energy.idle_j,
                "static_j": self.energy.static_j,
                "dram_j": self.energy.dram_j,
                "total_j": self.energy.total_j,
            },
            "traffic_bytes": self.traffic_bytes,
        }
        if include_traces:
            data["traces"] = [trace.to_dict() for trace in self.traces]
        if self.diagnostics is not None:
            data["diagnostics"] = [diagnostic.to_dict()
                                   for diagnostic in self.diagnostics]
        return data

    def output_array(self):
        """The final output as a float32 numpy array.

        Raises:
            ValueError: for timing-only runs with no functional output.
        """
        if not self.outputs:
            raise ValueError(
                "timing-only run has no functional outputs; pass input "
                "data to Executor.run")
        last_trace = self.traces[-1]
        return self.outputs[last_trace.layer].to_float()


def speed_improvement(baseline_s: float, improved_s: float) -> float:
    """The paper's "speed improvement" metric, in percent.

    Defined as the latency reduction relative to the baseline:
    ``(baseline - improved) / baseline * 100``.  The paper's headline
    "improves the speed by up to 69.6%" uses this definition.
    """
    if baseline_s <= 0:
        raise ValueError("baseline latency must be positive")
    return (baseline_s - improved_s) / baseline_s * 100.0


def geometric_mean(values: List[float]) -> float:
    """Geometric mean of positive values (paper's summary statistic)."""
    if not values:
        raise ValueError("geometric mean of an empty list")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))
