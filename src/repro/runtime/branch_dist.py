"""Branch distribution (Section 5, extended per Section 8.3).

For a fork/join region the branch distribution 1) collects the
single-processor execution latency of every branch, and 2) enumerates
branch-to-processor mappings, estimating each mapping's total latency
as the sum of the per-processor, per-branch latencies, and selecting
the mapping with the lowest estimate.  All layers of a branch execute
on a single processor -- branch distribution deliberately does *not*
combine with the channel-wise workload distribution inside a branch.

On NPU-equipped SoCs (Section 8.3: "the branch distribution can
benefit from having the NPU by being able to run more branches in
parallel") the mapping space extends to three processors; branches
containing layers the fixed-function NPU cannot execute (anything but
conv/FC) are never mapped to it.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import Callable, List, Optional, Sequence, Tuple

from ..nn import BranchRegion, Graph, LayerKind, LayerWork
from ..soc import ISSUE_US, SoCSpec

#: Cost callback: (resource, work) -> busy seconds.
BusyFn = Callable[[str, LayerWork], float]

#: Layer kinds a fixed-function NPU can execute.
NPU_KINDS = frozenset({LayerKind.CONV, LayerKind.FC})


@dataclasses.dataclass(frozen=True)
class BranchProfile:
    """Per-branch single-processor latencies.

    Attributes:
        cpu_s: latency of running the whole branch on the CPU.
        gpu_s: latency on the GPU (includes per-layer launch overheads;
            commands inside a branch drain in order without CPU
            synchronization).
        npu_s: latency on the NPU, or None when the SoC has no NPU or
            the branch contains NPU-incompatible layers.
    """

    cpu_s: float
    gpu_s: float
    npu_s: Optional[float] = None

    def cost(self, resource: str) -> float:
        """Latency on ``resource`` (inf when unavailable)."""
        if resource == "cpu":
            return self.cpu_s
        if resource == "gpu":
            return self.gpu_s
        return self.npu_s if self.npu_s is not None else math.inf


def _branch_cost(graph: Graph, branch: Sequence[str], soc: SoCSpec,
                 busy_fn: BusyFn, resource: str) -> float:
    cost = 0.0
    for name in branch:
        work = graph.layer_work(name)
        cost += busy_fn(resource, work)
        cost += soc.processor(resource).launch_seconds()
        if resource != "cpu":
            cost += ISSUE_US * 1e-6
    return cost


def profile_branches(graph: Graph, region: BranchRegion, soc: SoCSpec,
                     busy_fn: BusyFn) -> List[BranchProfile]:
    """Single-processor latency of every branch of ``region``."""
    profiles = []
    for branch in region.branches:
        cpu_s = _branch_cost(graph, branch, soc, busy_fn, "cpu")
        gpu_s = _branch_cost(graph, branch, soc, busy_fn, "gpu")
        npu_s = None
        if soc.has_npu and all(
                graph.layer(name).kind in NPU_KINDS for name in branch):
            npu_s = _branch_cost(graph, branch, soc, busy_fn, "npu")
        profiles.append(BranchProfile(cpu_s=cpu_s, gpu_s=gpu_s,
                                      npu_s=npu_s))
    return profiles


def estimate_mapping(profiles: Sequence[BranchProfile],
                     mapping: Sequence[str],
                     sync_s: float) -> float:
    """Estimated region latency of one branch-to-processor mapping.

    Branches on the same processor serialize; different processors run
    in parallel; a join synchronization is paid when any branch ran on
    an accelerator.  Mappings that put an incompatible branch on the
    NPU cost infinity.
    """
    totals: "dict[str, float]" = {}
    for profile, target in zip(profiles, mapping):
        totals[target] = totals.get(target, 0.0) + profile.cost(target)
    accel_used = any(target != "cpu" for target in mapping)
    estimate = max(totals.values()) if totals else 0.0
    if accel_used:
        estimate += sync_s
    return estimate


def best_branch_mapping(profiles: Sequence[BranchProfile],
                        sync_s: float,
                        resources: Tuple[str, ...] = ("cpu", "gpu")
                        ) -> Tuple[Tuple[str, ...], float]:
    """The latency-optimal branch-to-processor mapping.

    Enumerates all |resources|^B assignments (B is small: Inception
    has four branches, Fire has two) and returns
    (mapping, estimated latency).
    """
    best_mapping: Tuple[str, ...] = ("cpu",) * len(profiles)
    best_latency = float("inf")
    for mapping in itertools.product(resources, repeat=len(profiles)):
        latency = estimate_mapping(profiles, mapping, sync_s)
        if latency < best_latency:
            best_latency = latency
            best_mapping = mapping
    return best_mapping, best_latency
