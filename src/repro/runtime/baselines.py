"""Baseline execution mechanisms the paper compares against.

* **Single-processor** (Figure 4, CPU-only / GPU-only): the whole NN on
  one processor, at any data type (Figures 6, 8, 16, 18).
* **Layer-to-processor mapping** (DeepX-style): each layer runs on the
  processor with the lower predicted latency; the paper evaluates it
  with QUInt8, its fastest data type (Figures 16-18's "state of the
  art" baseline).
* **Network-to-processor mapping** (MCDNN-style): different *inputs*
  go to different processors; throughput improves but single-input
  latency stays single-processor (Section 2.2).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from ..nn import Graph
from ..quant.calibrate import CalibrationTable
from ..soc import SoCSpec
from ..tensor import DType
from .executor import Executor
from .metrics import InferenceResult
from .partitioner import Partitioner, PartitionerConfig
from .pfq import QuantizationPolicy, uniform_policy
from .plan import ExecutionPlan, LayerAssignment


def single_processor_plan(graph: Graph, resource: str,
                          policy: QuantizationPolicy,
                          batch: int = 1) -> ExecutionPlan:
    """A plan placing every layer on one processor.

    ``resource`` is ``"cpu"``, ``"gpu"``, or ``"npu"``.  Because a
    fixed-function NPU only executes conv/FC kernels, NPU plans place
    everything else (pooling, concat, softmax, ...) on the CPU -- the
    way real NPU delegates fall back to the host.  Single-processor
    placement does not depend on the batch, but the plan still records
    it so batched executions are timed at the right size.
    """
    if resource == "npu":
        from .branch_dist import NPU_KINDS
        assignments = {}
        for name in graph.compute_layers():
            if graph.layer(name).kind in NPU_KINDS:
                assignments[name] = LayerAssignment.on_npu(name)
            else:
                assignments[name] = LayerAssignment.on_cpu(name)
        return ExecutionPlan(graph_name=graph.name, policy=policy,
                             assignments=assignments, batch=batch)
    make = (LayerAssignment.on_cpu if resource == "cpu"
            else LayerAssignment.on_gpu)
    assignments = {name: make(name) for name in graph.compute_layers()}
    return ExecutionPlan(graph_name=graph.name, policy=policy,
                         assignments=assignments, batch=batch)


def run_single_processor(soc: SoCSpec, graph: Graph, resource: str,
                         dtype: DType,
                         x: Optional[np.ndarray] = None,
                         calibration: Optional[CalibrationTable] = None,
                         executor: Optional[Executor] = None
                         ) -> InferenceResult:
    """Run the whole NN on one processor in one data type."""
    policy = uniform_policy(dtype)
    plan = single_processor_plan(graph, resource, policy)
    executor = executor or Executor(soc)
    return executor.run(graph, plan, x=x, calibration=calibration,
                        mechanism=f"single-{resource}-{dtype}")


def layer_to_processor_plan(soc: SoCSpec, graph: Graph,
                            policy: QuantizationPolicy,
                            use_oracle_costs: bool = True
                            ) -> ExecutionPlan:
    """The DeepX-style per-layer mapping: each layer on the processor
    with the lower estimated latency.

    Built by running the partitioner with cooperative splits and branch
    distribution disabled, so the only choices left are CPU or GPU per
    layer -- exactly the layer-to-processor mechanism.
    """
    config = PartitionerConfig(enable_channel_distribution=False,
                               enable_branch_distribution=False,
                               use_oracle_costs=use_oracle_costs)
    partitioner = Partitioner(soc, policy=policy, config=config)
    return partitioner.plan(graph)


def run_layer_to_processor(soc: SoCSpec, graph: Graph,
                           dtype: DType = DType.QUINT8,
                           x: Optional[np.ndarray] = None,
                           calibration: Optional[CalibrationTable] = None,
                           executor: Optional[Executor] = None
                           ) -> InferenceResult:
    """Run the layer-to-processor baseline (QUInt8 by default, its
    fastest configuration per the paper's Section 7.2)."""
    policy = uniform_policy(dtype)
    plan = layer_to_processor_plan(soc, graph, policy)
    executor = executor or Executor(soc)
    return executor.run(graph, plan, x=x, calibration=calibration,
                        mechanism=f"layer-to-processor-{dtype}")


@dataclasses.dataclass(frozen=True)
class ThroughputResult:
    """Result of the network-to-processor (MCDNN-style) mechanism.

    Attributes:
        per_input_latency_s: latency of each input, by arrival order.
        makespan_s: time until all inputs are finished.
        throughput_ips: inputs per second over the makespan.
    """

    per_input_latency_s: List[float]
    makespan_s: float
    throughput_ips: float

    @property
    def mean_latency_s(self) -> float:
        """Mean single-input latency."""
        return float(np.mean(self.per_input_latency_s))


def run_network_to_processor(soc: SoCSpec, graph: Graph,
                             num_inputs: int,
                             dtype: DType = DType.QUINT8
                             ) -> ThroughputResult:
    """MCDNN-style execution: inputs alternate between CPU and GPU.

    Each processor runs its inputs back to back; both processors work
    in parallel on *different* inputs.  Per-input latency equals the
    single-processor latency of the processor the input landed on --
    the mechanism's throughput/latency trade-off the paper describes.
    """
    if num_inputs < 1:
        raise ValueError("num_inputs must be >= 1")
    latency: Dict[str, float] = {}
    for resource in ("cpu", "gpu"):
        result = run_single_processor(soc, graph, resource, dtype)
        latency[resource] = result.latency_s
    # Greedy earliest-finish assignment of inputs to processors.
    free = {"cpu": 0.0, "gpu": 0.0}
    per_input = []
    for _ in range(num_inputs):
        resource = min(free, key=lambda r: free[r] + latency[r])
        free[resource] += latency[resource]
        per_input.append(latency[resource])
    makespan = max(free.values())
    return ThroughputResult(per_input_latency_s=per_input,
                            makespan_s=makespan,
                            throughput_ips=num_inputs / makespan)
