"""Reproduction of uLayer (EuroSys 2019).

uLayer accelerates on-device NN inference by executing every single NN
layer cooperatively on the CPU *and* the GPU of a mobile SoC, with each
processor computing in its friendliest data type (CPU: QUInt8 integers,
GPU: F16 halves).  This package reproduces the system on a simulated
mobile SoC:

* :mod:`repro.tensor`, :mod:`repro.quant` -- data types and quantization.
* :mod:`repro.nn`, :mod:`repro.kernels` -- NN graph IR and numerics.
* :mod:`repro.models` -- the paper's five evaluated networks.
* :mod:`repro.soc` -- functional/timing/energy simulator of Exynos
  7420 ("high-end") and Exynos 7880 ("mid-range") SoCs.
* :mod:`repro.runtime` -- the uLayer runtime (channel-wise workload
  distribution, processor-friendly quantization, branch distribution)
  and the baseline execution mechanisms it is compared against.
* :mod:`repro.train`, :mod:`repro.eval` -- quantization-aware training
  and accuracy evaluation (Figure 10's experiment).
* :mod:`repro.harness` -- regenerates every figure and table of the
  paper's evaluation.

Quickstart::

    from repro.models import build_model
    from repro.runtime import MuLayer
    from repro.soc import EXYNOS_7420

    graph = build_model("squeezenet_mini")
    runtime = MuLayer(EXYNOS_7420)
    result = runtime.run(graph, x)          # x: NCHW float32 batch
    print(result.latency_ms, result.energy_mj)
"""

__version__ = "1.0.0"
